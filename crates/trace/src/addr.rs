//! Byte, block, and page addresses.

use core::fmt;
use core::ops::{Add, AddAssign};

/// The virtual-memory page size used throughout the workspace, in bytes.
///
/// The paper fixes the page size at 4 KB for both the trace-driven and the
/// execution-driven simulations (§3.3).
pub const PAGE_SIZE: u64 = 4096;

/// A byte address in the simulated shared address space.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, BlockSize};
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.get(), 0x1234);
/// assert_eq!(a.block(BlockSize::new(16).unwrap()).index(), 0x123);
/// assert_eq!(a.page().index(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this address.
    #[inline]
    pub const fn block(self, block_size: BlockSize) -> BlockAddr {
        BlockAddr(self.0 >> block_size.log2())
    }

    /// Returns the 4 KB page containing this address.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_SIZE)
    }

    /// Returns this address displaced by `offset` bytes.
    #[inline]
    pub const fn offset(self, offset: u64) -> Addr {
        Addr(self.0 + offset)
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(addr: u64) -> Self {
        Addr(addr)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-block-granular address: the byte address divided by the block
/// size.
///
/// A `BlockAddr` is only meaningful relative to the [`BlockSize`] that
/// produced it; simulators fix one block size per run.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, BlockSize};
///
/// let bs = BlockSize::new(64).unwrap();
/// let b = Addr::new(130).block(bs);
/// assert_eq!(b.index(), 2);
/// assert_eq!(b.base(bs), Addr::new(128));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the raw block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the block under `block_size`.
    #[inline]
    pub const fn base(self, block_size: BlockSize) -> Addr {
        Addr(self.0 << block_size.log2())
    }

    /// Returns the 4 KB page containing this block under `block_size`.
    #[inline]
    pub const fn page(self, block_size: BlockSize) -> PageAddr {
        self.base(block_size).page()
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// A 4 KB-page-granular address.
///
/// Used by the page-placement substrate to assign home nodes (§3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a raw page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// Returns the raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{:#x}", self.0)
    }
}

/// A cache block size in bytes, guaranteed to be a power of two.
///
/// The paper evaluates block sizes from 16 to 256 bytes (§3.3).
///
/// # Examples
///
/// ```
/// use mcc_trace::BlockSize;
///
/// let bs = BlockSize::new(64).unwrap();
/// assert_eq!(bs.bytes(), 64);
/// assert_eq!(bs.log2(), 6);
/// assert!(BlockSize::new(48).is_none());
/// assert!(BlockSize::new(0).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockSize(u32);

impl BlockSize {
    /// The paper's default block size: 16 bytes.
    pub const B16: BlockSize = BlockSize(4);
    /// 32-byte blocks.
    pub const B32: BlockSize = BlockSize(5);
    /// 64-byte blocks.
    pub const B64: BlockSize = BlockSize(6);
    /// 128-byte blocks.
    pub const B128: BlockSize = BlockSize(7);
    /// 256-byte blocks.
    pub const B256: BlockSize = BlockSize(8);

    /// The block sizes swept by Table 3 of the paper.
    pub const TABLE3_SWEEP: [BlockSize; 5] = [
        BlockSize::B16,
        BlockSize::B32,
        BlockSize::B64,
        BlockSize::B128,
        BlockSize::B256,
    ];

    /// Creates a block size, returning `None` unless `bytes` is a power of
    /// two greater than zero.
    #[inline]
    pub const fn new(bytes: u64) -> Option<Self> {
        if bytes == 0 || !bytes.is_power_of_two() {
            None
        } else {
            Some(BlockSize(bytes.trailing_zeros()))
        }
    }

    /// Returns the block size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.0
    }

    /// Returns log2 of the block size.
    #[inline]
    pub const fn log2(self) -> u32 {
        self.0
    }
}

impl Default for BlockSize {
    /// Defaults to the paper's 16-byte blocks.
    fn default() -> Self {
        BlockSize::B16
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_and_page() {
        let a = Addr::new(4096 + 17);
        assert_eq!(a.page(), PageAddr::new(1));
        assert_eq!(a.block(BlockSize::B16), BlockAddr::new((4096 + 17) / 16));
    }

    #[test]
    fn addr_arithmetic() {
        let mut a = Addr::new(10);
        a += 6;
        assert_eq!(a, Addr::new(16));
        assert_eq!(a + 16, Addr::new(32));
        assert_eq!(a.offset(4), Addr::new(20));
    }

    #[test]
    fn block_base_is_aligned() {
        for bs in BlockSize::TABLE3_SWEEP {
            let a = Addr::new(1000);
            let b = a.block(bs);
            let base = b.base(bs);
            assert_eq!(base.get() % bs.bytes(), 0);
            assert!(base <= a);
            assert!(a.get() < base.get() + bs.bytes());
        }
    }

    #[test]
    fn block_size_rejects_non_powers() {
        assert!(BlockSize::new(0).is_none());
        assert!(BlockSize::new(3).is_none());
        assert!(BlockSize::new(100).is_none());
        assert_eq!(BlockSize::new(16), Some(BlockSize::B16));
        assert_eq!(BlockSize::new(256), Some(BlockSize::B256));
    }

    #[test]
    fn block_size_named_constants() {
        assert_eq!(BlockSize::B16.bytes(), 16);
        assert_eq!(BlockSize::B32.bytes(), 32);
        assert_eq!(BlockSize::B64.bytes(), 64);
        assert_eq!(BlockSize::B128.bytes(), 128);
        assert_eq!(BlockSize::B256.bytes(), 256);
        assert_eq!(BlockSize::default(), BlockSize::B16);
    }

    #[test]
    fn block_page_consistency() {
        let bs = BlockSize::B64;
        let a = Addr::new(3 * PAGE_SIZE + 100);
        assert_eq!(a.block(bs).page(bs), a.page());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
        assert_eq!(BlockAddr::new(2).to_string(), "B0x2");
        assert_eq!(PageAddr::new(2).to_string(), "page0x2");
        assert_eq!(BlockSize::B64.to_string(), "64B");
    }
}
