//! Out-of-core trace streaming.
//!
//! [`Trace::read_from`] materializes every record before the first one
//! can be simulated — at 11 bytes a record, a billion-reference trace
//! is 11 GB of RSS before the simulator even starts. [`TraceStream`]
//! instead describes *where the records come from* and hands out
//! cheap, restartable passes over them: records are decoded in fixed
//! 64 KB chunks and yielded one at a time, so memory stays bounded no
//! matter how long the trace is.
//!
//! A stream is **re-openable**: every call to [`TraceStream::records`]
//! (or [`TraceStream::records_from`]) starts a fresh pass from a fresh
//! file handle, which is what lets a killed run re-open the same
//! stream and resume from an absolute record index in O(1) — a seek,
//! not a replay. Two sources exist:
//!
//! * **File** — an MCCT v2 (or legacy v1) trace on disk. The header's
//!   record count is validated against the file size *at open*, so a
//!   truncated or hostile file is rejected before any records flow.
//! * **Generator** — a pure function from record index to [`MemRef`].
//!   Synthetic workloads of any length cost no disk and no memory;
//!   index-addressability makes seeking trivial.
//!
//! Block-hash sharding composes on a stream: a
//! [`shard filter`](TraceStream::with_shard_filter) restricts a pass
//! to the records [`shard_of_block`] assigns to one shard while still
//! reporting each record's *absolute* index in the underlying trace —
//! so K filtered streams over the same source partition it exactly,
//! and checkpoint cadence can be phrased in absolute indices that mean
//! the same thing in every shard.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::addr::{Addr, BlockSize};
use crate::io::{ReadTraceError, TRACE_MAGIC, TRACE_MAGIC_V1};
use crate::record::{MemOp, MemRef, NodeId};
use crate::shard::shard_of_block;
use crate::trace::Trace;

/// Bytes per serialized MCCT record.
const RECORD_BYTES: u64 = 11;

/// Chunk size for file-backed passes: records are decoded out of a
/// buffered reader of this capacity, never from a whole-file read.
const CHUNK_BYTES: usize = 64 * 1024;

/// A generator closure: record index in, record out. Must be pure —
/// the same index must always produce the same record, or resumed and
/// sharded passes disagree about the trace's contents.
type GeneratorFn = Arc<dyn Fn(u64) -> MemRef + Send + Sync>;

#[derive(Clone)]
enum Source {
    /// An MCCT trace on disk; `offset` is where the payload starts
    /// (16 for v2, 8 for legacy v1).
    File { path: PathBuf, offset: u64 },
    /// A pure index-to-record function.
    Generator(GeneratorFn),
}

/// Restriction of a pass to the records one block-hash shard owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ShardFilter {
    block_size: BlockSize,
    shard: usize,
    shards: usize,
}

impl ShardFilter {
    fn admits(&self, r: &MemRef) -> bool {
        shard_of_block(r.addr.block(self.block_size), self.shards) == self.shard
    }
}

/// A re-openable, boundedly-buffered source of trace records.
///
/// See the [module documentation](self) for the design; see
/// [`TraceStream::records`] for iteration.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, MemRef, NodeId, TraceStream};
///
/// // A ten-record synthetic trace that costs no memory.
/// let stream = TraceStream::from_generator(10, |i| {
///     MemRef::read(NodeId::new((i % 4) as u16), Addr::new(i * 16))
/// });
/// assert_eq!(stream.len(), 10);
/// let sum: u64 = stream
///     .records()
///     .unwrap()
///     .map(|r| r.unwrap().1.addr.get())
///     .sum();
/// assert_eq!(sum, 16 * (0..10u64).sum::<u64>());
/// ```
#[derive(Clone)]
pub struct TraceStream {
    source: Source,
    count: u64,
    filter: Option<ShardFilter>,
}

impl fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("TraceStream");
        match &self.source {
            Source::File { path, offset } => {
                d.field("file", path).field("offset", offset);
            }
            Source::Generator(_) => {
                d.field("generator", &"<fn>");
            }
        }
        d.field("records", &self.count)
            .field("filter", &self.filter)
            .finish()
    }
}

impl TraceStream {
    /// Opens an MCCT trace file as a stream, validating the header and
    /// the file length without reading any records.
    ///
    /// For a v2 file the declared record count is authoritative and the
    /// file must hold exactly `16 + 11 * count` bytes: a shorter file is
    /// [`ReadTraceError::CountMismatch`] (or
    /// [`ReadTraceError::TruncatedRecord`] when the payload is not a
    /// whole number of records), a longer one
    /// [`ReadTraceError::TrailingBytes`]. A hostile count — one whose
    /// payload could not even be addressed in a `u64` — is rejected the
    /// same way, without allocating. Legacy v1 files (no count) derive
    /// their count from the file size.
    ///
    /// # Errors
    ///
    /// [`ReadTraceError`] when the file cannot be opened or is not a
    /// structurally valid MCCT trace.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceStream, ReadTraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let size = file.metadata()?.len();
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ReadTraceError::BadMagic
            } else {
                ReadTraceError::Io(e)
            }
        })?;
        let (offset, count) = if magic == TRACE_MAGIC {
            let mut count = [0u8; 8];
            file.read_exact(&mut count)
                .map_err(|_| ReadTraceError::TruncatedRecord)?;
            let declared = u64::from_le_bytes(count);
            let payload = size - 16;
            let whole = payload / RECORD_BYTES;
            if payload % RECORD_BYTES != 0 {
                return Err(if whole >= declared {
                    ReadTraceError::TrailingBytes { declared }
                } else {
                    ReadTraceError::TruncatedRecord
                });
            }
            // `declared * 11` may not even fit a u64 for a hostile
            // header; comparing record counts sidesteps the overflow.
            match whole.cmp(&declared) {
                std::cmp::Ordering::Less => {
                    return Err(ReadTraceError::CountMismatch {
                        declared,
                        read: whole,
                    })
                }
                std::cmp::Ordering::Greater => {
                    return Err(ReadTraceError::TrailingBytes { declared })
                }
                std::cmp::Ordering::Equal => {}
            }
            (16u64, declared)
        } else if magic == TRACE_MAGIC_V1 {
            let payload = size - 8;
            if payload % RECORD_BYTES != 0 {
                return Err(ReadTraceError::TruncatedRecord);
            }
            (8u64, payload / RECORD_BYTES)
        } else {
            return Err(ReadTraceError::BadMagic);
        };
        Ok(TraceStream {
            source: Source::File { path, offset },
            count,
            filter: None,
        })
    }

    /// Wraps a pure index-to-record function as a `count`-record
    /// stream.
    ///
    /// The function **must** be deterministic: passes may be restarted,
    /// sharded, and resumed, and every pass must see the same records.
    pub fn from_generator(
        count: u64,
        f: impl Fn(u64) -> MemRef + Send + Sync + 'static,
    ) -> TraceStream {
        TraceStream {
            source: Source::Generator(Arc::new(f)),
            count,
            filter: None,
        }
    }

    /// Total records in the **underlying** trace — the filter does not
    /// change this; absolute indices always range over `0..len()`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the underlying trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Restricts passes to the records [`shard_of_block`] (under
    /// `block_size`) assigns to `shard` of `shards`. Yielded records
    /// keep their absolute indices, so K filtered clones of the same
    /// stream partition it exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `shard >= shards`.
    pub fn with_shard_filter(
        mut self,
        block_size: BlockSize,
        shard: usize,
        shards: usize,
    ) -> TraceStream {
        assert!(shards > 0, "shard count must be positive");
        assert!(shard < shards, "shard {shard} out of range for {shards}");
        self.filter = Some(ShardFilter {
            block_size,
            shard,
            shards,
        });
        self
    }

    /// The `(block_size, shard, shards)` filter, if one is set.
    pub fn shard_filter(&self) -> Option<(BlockSize, usize, usize)> {
        self.filter.map(|f| (f.block_size, f.shard, f.shards))
    }

    /// A clone of this stream without its shard filter — the full
    /// underlying trace, as placement profiling must see it.
    pub fn unfiltered(&self) -> TraceStream {
        let mut s = self.clone();
        s.filter = None;
        s
    }

    /// The record at absolute index `i`, independent of any pass —
    /// a seek for file sources, a call for generators. This is what
    /// makes cheap spot-validation of a resumed stream possible.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    ///
    /// # Errors
    ///
    /// [`ReadTraceError`] when the underlying file cannot be read or
    /// holds an invalid record.
    pub fn record_at(&self, i: u64) -> Result<MemRef, ReadTraceError> {
        assert!(i < self.count, "record {i} out of range ({})", self.count);
        match &self.source {
            Source::Generator(f) => Ok(f(i)),
            Source::File { path, offset } => {
                let mut file = File::open(path)?;
                file.seek(SeekFrom::Start(offset + i * RECORD_BYTES))?;
                let mut buf = [0u8; RECORD_BYTES as usize];
                file.read_exact(&mut buf)
                    .map_err(|_| ReadTraceError::TruncatedRecord)?;
                decode_record(&buf)
            }
        }
    }

    /// Starts a fresh pass over the (filtered) records from absolute
    /// index 0. Each item is `(absolute_index, record)`.
    ///
    /// # Errors
    ///
    /// [`ReadTraceError`] when a file source cannot be re-opened.
    pub fn records(&self) -> Result<Records<'_>, ReadTraceError> {
        self.records_from(0)
    }

    /// Starts a fresh pass from absolute record index `start` (clamped
    /// to the end of the trace): a seek for file sources, an index jump
    /// for generators — O(1) either way, which is what makes resuming
    /// from a checkpoint cheap. The shard filter still applies; indices
    /// yielded are absolute.
    ///
    /// # Errors
    ///
    /// [`ReadTraceError`] when a file source cannot be re-opened.
    pub fn records_from(&self, start: u64) -> Result<Records<'_>, ReadTraceError> {
        let start = start.min(self.count);
        let inner = match &self.source {
            Source::Generator(f) => Inner::Generator(f),
            Source::File { path, offset } => {
                let mut file = File::open(path)?;
                file.seek(SeekFrom::Start(offset + start * RECORD_BYTES))?;
                Inner::File(BufReader::with_capacity(CHUNK_BYTES, file))
            }
        };
        Ok(Records {
            inner,
            next: start,
            count: self.count,
            filter: self.filter,
        })
    }

    /// Materializes the (filtered) stream into a [`Trace`] — the bridge
    /// back to the in-memory API, for traces known to fit.
    ///
    /// # Errors
    ///
    /// Any error the pass itself reports.
    pub fn collect_trace(&self) -> Result<Trace, ReadTraceError> {
        let mut t = Trace::new();
        for r in self.records()? {
            t.push(r?.1);
        }
        Ok(t)
    }

    /// Writes the (filtered) records as an MCCT v2 trace. Takes two
    /// passes — one to count, one to write — so the authoritative
    /// header count is exact even under a filter, and memory stays
    /// bounded.
    ///
    /// # Errors
    ///
    /// Any error the passes report, plus I/O errors from `writer`.
    pub fn write_to<W: std::io::Write>(&self, mut writer: W) -> Result<(), ReadTraceError> {
        let mut matching = 0u64;
        for r in self.records()? {
            r?;
            matching += 1;
        }
        writer.write_all(&TRACE_MAGIC)?;
        writer.write_all(&matching.to_le_bytes())?;
        let mut buf = [0u8; RECORD_BYTES as usize];
        for r in self.records()? {
            let (_, r) = r?;
            buf[..2].copy_from_slice(&(r.node.index() as u16).to_le_bytes());
            buf[2] = r.op.is_write() as u8;
            buf[3..].copy_from_slice(&r.addr.get().to_le_bytes());
            writer.write_all(&buf)?;
        }
        Ok(())
    }
}

enum Inner<'a> {
    File(BufReader<File>),
    Generator(&'a GeneratorFn),
}

/// One pass over a [`TraceStream`]'s records.
///
/// Yields `Result<(absolute_index, record), ReadTraceError>`; after the
/// first error the pass is fused (yields `None` forever).
pub struct Records<'a> {
    inner: Inner<'a>,
    next: u64,
    count: u64,
    filter: Option<ShardFilter>,
}

impl Records<'_> {
    fn read_one(&mut self) -> Result<MemRef, ReadTraceError> {
        let i = self.next;
        match &mut self.inner {
            Inner::Generator(f) => Ok(f(i)),
            Inner::File(reader) => {
                let mut buf = [0u8; RECORD_BYTES as usize];
                reader.read_exact(&mut buf).map_err(|e| match e.kind() {
                    std::io::ErrorKind::UnexpectedEof => ReadTraceError::TruncatedRecord,
                    _ => ReadTraceError::Io(e),
                })?;
                decode_record(&buf)
            }
        }
    }
}

impl Iterator for Records<'_> {
    type Item = Result<(u64, MemRef), ReadTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.count {
            let i = self.next;
            match self.read_one() {
                Ok(r) => {
                    self.next += 1;
                    if self.filter.is_none_or(|f| f.admits(&r)) {
                        return Some(Ok((i, r)));
                    }
                }
                Err(e) => {
                    self.next = self.count; // fuse
                    return Some(Err(e));
                }
            }
        }
        None
    }
}

fn decode_record(buf: &[u8; RECORD_BYTES as usize]) -> Result<MemRef, ReadTraceError> {
    let node = u16::from_le_bytes([buf[0], buf[1]]);
    let op = match buf[2] {
        0 => MemOp::Read,
        1 => MemOp::Write,
        b => return Err(ReadTraceError::BadOp(b)),
    };
    let addr = u64::from_le_bytes(buf[3..].try_into().expect("8 bytes"));
    Ok(MemRef::new(NodeId::new(node), op, Addr::new(addr)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn sample() -> Trace {
        let mut t = Trace::new();
        for i in 0..500u64 {
            let node = NodeId::new((i % 16) as u16);
            let addr = Addr::new(i * 13 % 4096);
            t.push(if i % 3 == 0 {
                MemRef::write(node, addr)
            } else {
                MemRef::read(node, addr)
            });
        }
        t
    }

    fn write_tempfile(bytes: &[u8]) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcc-stream-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    fn file_stream(t: &Trace) -> (TraceStream, PathBuf) {
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let path = write_tempfile(&buf);
        (TraceStream::open(&path).unwrap(), path)
    }

    #[test]
    fn file_pass_matches_materialized_read() {
        let t = sample();
        let (stream, path) = file_stream(&t);
        assert_eq!(stream.len(), t.len() as u64);
        let collected = stream.collect_trace().unwrap();
        assert_eq!(collected, t);
        // Indices are the record positions.
        for (want, got) in stream.records().unwrap().enumerate() {
            let (i, r) = got.unwrap();
            assert_eq!(i, want as u64);
            assert_eq!(r, t.as_slice()[want]);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn generator_pass_is_deterministic_and_restartable() {
        let stream = TraceStream::from_generator(100, |i| {
            MemRef::read(NodeId::new((i % 7) as u16), Addr::new(i * 32))
        });
        let a = stream.collect_trace().unwrap();
        let b = stream.collect_trace().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn records_from_equals_skipped_pass() {
        let t = sample();
        let (stream, path) = file_stream(&t);
        for start in [0u64, 1, 250, 499, 500, 1000] {
            let skipped: Vec<_> = stream
                .records()
                .unwrap()
                .skip(start.min(500) as usize)
                .map(Result::unwrap)
                .collect();
            let seeked: Vec<_> = stream
                .records_from(start)
                .unwrap()
                .map(Result::unwrap)
                .collect();
            assert_eq!(seeked, skipped, "start {start}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn shard_filters_partition_exactly_and_keep_absolute_indices() {
        let t = sample();
        let (stream, path) = file_stream(&t);
        let bs = BlockSize::B16;
        for shards in [1usize, 2, 4, 8] {
            let mut seen = vec![false; t.len()];
            for shard in 0..shards {
                let filtered = stream.clone().with_shard_filter(bs, shard, shards);
                for item in filtered.records().unwrap() {
                    let (i, r) = item.unwrap();
                    assert_eq!(r, t.as_slice()[i as usize]);
                    assert_eq!(shard_of_block(r.addr.block(bs), shards), shard);
                    assert!(!seen[i as usize], "record {i} yielded twice");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some record in no shard");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn filtered_stream_matches_partition_by_block() {
        let t = sample();
        let (stream, path) = file_stream(&t);
        let bs = BlockSize::B16;
        let parts = t.partition_by_block(bs, 4);
        for (shard, part) in parts.iter().enumerate() {
            let filtered = stream
                .clone()
                .with_shard_filter(bs, shard, 4)
                .collect_trace()
                .unwrap();
            assert_eq!(&filtered, part, "shard {shard}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn record_at_seeks_anywhere() {
        let t = sample();
        let (stream, path) = file_stream(&t);
        for i in [0u64, 1, 17, 499] {
            assert_eq!(stream.record_at(i).unwrap(), t.as_slice()[i as usize]);
        }
        let gen =
            TraceStream::from_generator(10, |i| MemRef::write(NodeId::new(0), Addr::new(i * 16)));
        assert_eq!(gen.record_at(7).unwrap().addr, Addr::new(112));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_at_rejects_out_of_range() {
        let gen = TraceStream::from_generator(10, |i| MemRef::read(NodeId::new(0), Addr::new(i)));
        let _ = gen.record_at(10);
    }

    #[test]
    fn open_reads_legacy_v1_files() {
        let t = sample();
        let mut buf = Vec::from(TRACE_MAGIC_V1);
        for r in t.iter() {
            buf.extend_from_slice(&(r.node.index() as u16).to_le_bytes());
            buf.push(r.op.is_write() as u8);
            buf.extend_from_slice(&r.addr.get().to_le_bytes());
        }
        let path = write_tempfile(&buf);
        let stream = TraceStream::open(&path).unwrap();
        assert_eq!(stream.len(), t.len() as u64);
        assert_eq!(stream.collect_trace().unwrap(), t);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic_and_empty_files() {
        let path = write_tempfile(b"NOTATRACE");
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::BadMagic
        ));
        std::fs::remove_file(path).unwrap();
        let path = write_tempfile(b"");
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::BadMagic
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_truncation_and_count_mismatch() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Mid-record truncation.
        let path = write_tempfile(&buf[..buf.len() - 3]);
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::TruncatedRecord
        ));
        std::fs::remove_file(path).unwrap();
        // Whole-record shortfall.
        let path = write_tempfile(&buf[..buf.len() - 11]);
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::CountMismatch {
                declared: 500,
                read: 499
            }
        ));
        std::fs::remove_file(path).unwrap();
        // Trailing garbage.
        let mut long = buf.clone();
        long.extend_from_slice(&buf[16..27]);
        let path = write_tempfile(&long);
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::TrailingBytes { declared: 500 }
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_hostile_count_without_allocating() {
        // A header declaring u64::MAX records: 11 * count overflows, the
        // payload is empty — must fail cleanly at open.
        let mut buf = Vec::from(TRACE_MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let path = write_tempfile(&buf);
        assert!(matches!(
            TraceStream::open(&path).unwrap_err(),
            ReadTraceError::CountMismatch { read: 0, .. }
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pass_surfaces_bad_op_and_fuses() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[16 + 11 + 2] = 9; // op byte of the second record
        let path = write_tempfile(&buf);
        let stream = TraceStream::open(&path).unwrap();
        let mut pass = stream.records().unwrap();
        assert!(pass.next().unwrap().is_ok());
        assert!(matches!(pass.next(), Some(Err(ReadTraceError::BadOp(9)))));
        assert!(pass.next().is_none(), "errored pass must fuse");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn write_to_round_trips_with_and_without_filter() {
        let t = sample();
        let stream = {
            let mut buf = Vec::new();
            t.write_to(&mut buf).unwrap();
            let path = write_tempfile(&buf);
            TraceStream::open(&path).unwrap()
        };
        let mut out = Vec::new();
        stream.write_to(&mut out).unwrap();
        assert_eq!(Trace::read_from(&out[..]).unwrap(), t);

        let bs = BlockSize::B16;
        let filtered = stream.with_shard_filter(bs, 1, 4);
        let mut out = Vec::new();
        filtered.write_to(&mut out).unwrap();
        assert_eq!(
            Trace::read_from(&out[..]).unwrap(),
            t.partition_by_block(bs, 4)[1]
        );
    }

    #[test]
    fn unfiltered_drops_the_filter() {
        let gen =
            TraceStream::from_generator(64, |i| MemRef::read(NodeId::new(0), Addr::new(i * 16)));
        let filtered = gen.with_shard_filter(BlockSize::B16, 0, 4);
        assert!(filtered.shard_filter().is_some());
        let full = filtered.unfiltered();
        assert!(full.shard_filter().is_none());
        assert_eq!(full.collect_trace().unwrap().len(), 64);
    }

    #[test]
    fn debug_names_the_source() {
        let gen = TraceStream::from_generator(4, |i| MemRef::read(NodeId::new(0), Addr::new(i)));
        assert!(format!("{gen:?}").contains("generator"));
    }
}
