//! Address sharding: partitioning traces by cache block for the
//! parallel simulation engine.
//!
//! Directory coherence state is per-block, and (absent finite-cache
//! eviction) blocks never interact, so a trace can be split into
//! per-shard sub-traces — every reference to a given block lands in the
//! same shard — and each shard simulated independently. The shard
//! function is a fixed integer hash of the block index: deterministic,
//! platform-independent, and balanced even for strided address
//! patterns. The same function must be used by every consumer
//! (partitioner, engines, stall accounting) or the shards disagree
//! about block ownership.

use crate::addr::{BlockAddr, BlockSize};
use crate::trace::Trace;

/// The shard owning `block` when the address space is split `shards`
/// ways.
///
/// Uses the SplitMix64 finalizer as an avalanching integer hash so
/// consecutive or strided block indices spread evenly across shards.
/// Deterministic: the same `(block, shards)` pair always maps to the
/// same shard, on every platform and in every run.
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Examples
///
/// ```
/// use mcc_trace::{shard_of_block, BlockAddr};
///
/// let shard = shard_of_block(BlockAddr::new(7), 4);
/// assert!(shard < 4);
/// assert_eq!(shard, shard_of_block(BlockAddr::new(7), 4));
/// assert_eq!(shard_of_block(BlockAddr::new(7), 1), 0);
/// ```
pub fn shard_of_block(block: BlockAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    if shards == 1 {
        return 0;
    }
    let mut z = block.index().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

impl Trace {
    /// Partitions the trace into `shards` sub-traces by block address
    /// under `block_size`, preserving the global reference order inside
    /// every shard (which also preserves each node's per-shard program
    /// order).
    ///
    /// Every reference to a given block lands in the shard
    /// [`shard_of_block`] assigns it; a shard owning no referenced
    /// blocks comes back empty. The partition is exact: shard lengths
    /// sum to the trace length and `shards == 1` returns the original
    /// trace unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcc_trace::{Addr, BlockSize, MemRef, NodeId, Trace};
    ///
    /// let mut t = Trace::new();
    /// for i in 0..32u64 {
    ///     t.push(MemRef::read(NodeId::new(0), Addr::new(i * 16)));
    /// }
    /// let parts = t.partition_by_block(BlockSize::B16, 4);
    /// assert_eq!(parts.len(), 4);
    /// assert_eq!(parts.iter().map(Trace::len).sum::<usize>(), t.len());
    /// ```
    pub fn partition_by_block(&self, block_size: BlockSize, shards: usize) -> Vec<Trace> {
        assert!(shards > 0, "shard count must be positive");
        let mut out = vec![Trace::new(); shards];
        for r in self.iter() {
            out[shard_of_block(r.addr.block(block_size), shards)].push(*r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::record::{MemRef, NodeId};

    fn strided(n: u64, stride: u64) -> Trace {
        (0..n)
            .map(|i| MemRef::read(NodeId::new((i % 4) as u16), Addr::new(i * stride)))
            .collect()
    }

    #[test]
    fn shard_function_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            for b in 0..1000u64 {
                let s = shard_of_block(BlockAddr::new(b), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_block(BlockAddr::new(b), shards));
            }
        }
    }

    #[test]
    fn shard_function_balances_strided_blocks() {
        // Block indices 0, 4, 8, ... (a 64-byte stride over 16-byte
        // blocks) must not all collapse into a few shards, which a plain
        // modulo would do.
        let shards = 8;
        let mut counts = vec![0u64; shards];
        for b in (0..8000u64).step_by(4) {
            counts[shard_of_block(BlockAddr::new(b), shards)] += 1;
        }
        let expect = 2000 / shards as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {i} holds {c} of {expect} expected blocks"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected_by_hash() {
        let _ = shard_of_block(BlockAddr::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected_by_partitioner() {
        let _ = Trace::new().partition_by_block(BlockSize::B16, 0);
    }

    #[test]
    fn empty_trace_partitions_into_empty_shards() {
        let parts = Trace::new().partition_by_block(BlockSize::B16, 4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(Trace::is_empty));
    }

    #[test]
    fn single_record_lands_in_exactly_one_shard() {
        let mut t = Trace::new();
        t.push(MemRef::write(NodeId::new(3), Addr::new(0x40)));
        for shards in [1usize, 2, 4, 8] {
            let parts = t.partition_by_block(BlockSize::B16, shards);
            assert_eq!(parts.len(), shards);
            let non_empty: Vec<&Trace> = parts.iter().filter(|p| !p.is_empty()).collect();
            assert_eq!(non_empty.len(), 1, "one record, one non-empty shard");
            assert_eq!(non_empty[0].as_slice(), t.as_slice());
        }
    }

    #[test]
    fn single_shard_round_trips_the_trace() {
        let t = strided(100, 24);
        let parts = t.partition_by_block(BlockSize::B16, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], t);
    }

    #[test]
    fn partition_is_exact_and_consistent_with_the_shard_function() {
        let t = strided(500, 16);
        for shards in [2usize, 3, 4, 8] {
            let parts = t.partition_by_block(BlockSize::B16, shards);
            assert_eq!(parts.iter().map(Trace::len).sum::<usize>(), t.len());
            for (i, part) in parts.iter().enumerate() {
                for r in part.iter() {
                    assert_eq!(shard_of_block(r.addr.block(BlockSize::B16), shards), i);
                }
            }
        }
    }

    #[test]
    fn shards_preserve_global_suborder() {
        // Each shard must be the subsequence of the original trace
        // owned by that shard, in the original order.
        let t = strided(300, 48);
        for shards in [2usize, 4, 8] {
            let parts = t.partition_by_block(BlockSize::B16, shards);
            for (i, part) in parts.iter().enumerate() {
                let expected: Vec<MemRef> = t
                    .iter()
                    .filter(|r| shard_of_block(r.addr.block(BlockSize::B16), shards) == i)
                    .copied()
                    .collect();
                assert_eq!(part.as_slice(), expected.as_slice());
            }
        }
    }

    #[test]
    fn more_shards_than_blocks_yields_empty_shards() {
        // Two distinct blocks, sixteen shards: at least fourteen shards
        // must be empty, and the union must round-trip.
        let mut t = Trace::new();
        for _ in 0..10 {
            t.push(MemRef::read(NodeId::new(0), Addr::new(0)));
            t.push(MemRef::write(NodeId::new(1), Addr::new(0x100)));
        }
        let parts = t.partition_by_block(BlockSize::B16, 16);
        let empty = parts.iter().filter(|p| p.is_empty()).count();
        assert!(empty >= 14);
        assert_eq!(parts.iter().map(Trace::len).sum::<usize>(), t.len());
    }
}
