//! Binary trace serialization.
//!
//! The format is deliberately simple and self-describing. Version 2
//! streams open with an 8-byte header (magic + version) and a
//! little-endian `u64` record count, followed by fixed-width
//! little-endian records of `(node: u16, op: u8, addr: u64)` — 11 bytes
//! per reference. The count is authoritative: the reader pre-allocates
//! (boundedly), detects truncation even on a record boundary, rejects
//! absurd counts before touching memory, and rejects streams that
//! continue past the declared payload. Version 1 streams (no count;
//! records run to end-of-stream) are still read transparently.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::record::{MemOp, MemRef, NodeId};
use crate::trace::Trace;
use crate::Addr;

/// Magic bytes opening every serialized trace: `MCCT` + format version 2.
pub const TRACE_MAGIC: [u8; 8] = *b"MCCT\x02\0\0\0";

/// Magic bytes of the legacy count-less version 1 format, still accepted
/// by [`Trace::read_from`].
pub const TRACE_MAGIC_V1: [u8; 8] = *b"MCCT\x01\0\0\0";

/// Upper bound on the records pre-allocated from a v2 count prefix.
///
/// A corrupt or hostile count must not translate into an allocation: the
/// reader reserves at most this many records up front and lets the
/// stream itself prove it really contains more.
const PREALLOC_CAP: u64 = 1 << 20;

/// Error produced when deserializing a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// The stream did not start with [`TRACE_MAGIC`] (or the legacy
    /// [`TRACE_MAGIC_V1`]).
    BadMagic,
    /// The stream ended in the middle of a record.
    TruncatedRecord,
    /// A v2 stream held a different number of records than its header
    /// declared.
    CountMismatch {
        /// Records the header declared.
        declared: u64,
        /// Records actually present.
        read: u64,
    },
    /// A v2 stream continued past its declared record count. Trailing
    /// bytes mean the header and the payload disagree — the stream was
    /// corrupted, concatenated, or tampered with — so the whole trace is
    /// rejected rather than silently ignoring the tail.
    TrailingBytes {
        /// Records the header declared (all of which parsed cleanly).
        declared: u64,
    },
    /// A record contained an operation byte other than 0 (read) or 1 (write).
    BadOp(u8),
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::BadMagic => write!(f, "stream is not an MCCT trace"),
            ReadTraceError::TruncatedRecord => write!(f, "trace ends mid-record"),
            ReadTraceError::CountMismatch { declared, read } => write!(
                f,
                "trace header declares {declared} records but the stream holds {read}"
            ),
            ReadTraceError::TrailingBytes { declared } => write!(
                f,
                "trace stream continues past its declared {declared} records"
            ),
            ReadTraceError::BadOp(b) => write!(f, "invalid operation byte {b:#x}"),
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl Trace {
    /// Serializes the trace to `writer` in the MCCT v2 binary format.
    ///
    /// Pass `&mut writer` if you need the writer back afterwards.
    ///
    /// # Errors
    ///
    /// Returns any error produced by the underlying writer.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> std::io::Result<()> {
    /// use mcc_trace::{Addr, MemRef, NodeId, Trace};
    /// let mut t = Trace::new();
    /// t.push(MemRef::write(NodeId::new(1), Addr::new(0x40)));
    /// let mut buf = Vec::new();
    /// t.write_to(&mut buf)?;
    /// let back = Trace::read_from(&buf[..]).unwrap();
    /// assert_eq!(back, t);
    /// # Ok(())
    /// # }
    /// ```
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&TRACE_MAGIC)?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        let mut buf = [0u8; 11];
        for r in self.iter() {
            buf[..2].copy_from_slice(&(r.node.index() as u16).to_le_bytes());
            buf[2] = r.op.is_write() as u8;
            buf[3..].copy_from_slice(&r.addr.get().to_le_bytes());
            writer.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserializes a trace from `reader`, accepting both the v2 format
    /// (with record count) and the legacy v1 format (records to
    /// end-of-stream).
    ///
    /// Pass `&mut reader` if you need the reader back afterwards.
    ///
    /// Robust against corrupt input: any truncated, bit-flipped, or
    /// hostile stream produces an error — never a panic, and never an
    /// allocation sized by untrusted data.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the stream is not a valid MCCT trace
    /// or the underlying reader fails.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Trace, ReadTraceError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        let declared = if magic == TRACE_MAGIC {
            let mut count = [0u8; 8];
            reader.read_exact(&mut count)?;
            Some(u64::from_le_bytes(count))
        } else if magic == TRACE_MAGIC_V1 {
            None
        } else {
            return Err(ReadTraceError::BadMagic);
        };
        let mut trace = Trace::with_capacity(declared.unwrap_or(0).min(PREALLOC_CAP) as usize);
        let mut buf = [0u8; 11];
        match declared {
            // v2: the header is authoritative. Read exactly `declared`
            // records, then require the stream to end — trailing bytes
            // are as much a header/payload disagreement as a shortfall.
            Some(declared) => {
                for read in 0..declared {
                    match read_record(&mut reader, &mut buf)? {
                        RecordRead::Eof => {
                            return Err(ReadTraceError::CountMismatch { declared, read })
                        }
                        RecordRead::Record => trace.push(parse_record(&buf)?),
                    }
                }
                let mut probe = [0u8; 1];
                loop {
                    match reader.read(&mut probe) {
                        Ok(0) => break,
                        Ok(_) => return Err(ReadTraceError::TrailingBytes { declared }),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ReadTraceError::Io(e)),
                    }
                }
            }
            // v1: no count; records run to end-of-stream.
            None => loop {
                match read_record(&mut reader, &mut buf)? {
                    RecordRead::Eof => break,
                    RecordRead::Record => trace.push(parse_record(&buf)?),
                }
            },
        }
        Ok(trace)
    }
}

enum RecordRead {
    Eof,
    Record,
}

fn parse_record(buf: &[u8; 11]) -> Result<MemRef, ReadTraceError> {
    let node = u16::from_le_bytes([buf[0], buf[1]]);
    let op = match buf[2] {
        0 => MemOp::Read,
        1 => MemOp::Write,
        b => return Err(ReadTraceError::BadOp(b)),
    };
    let addr = u64::from_le_bytes(buf[3..].try_into().expect("8 bytes"));
    Ok(MemRef::new(NodeId::new(node), op, Addr::new(addr)))
}

fn read_record<R: Read>(reader: &mut R, buf: &mut [u8; 11]) -> Result<RecordRead, ReadTraceError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(RecordRead::Eof)
            } else {
                Err(ReadTraceError::TruncatedRecord)
            };
        }
        filled += n;
    }
    Ok(RecordRead::Record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        for i in 0..100u64 {
            let node = NodeId::new((i % 16) as u16);
            let addr = Addr::new(i * 13 % 4096);
            t.push(if i % 3 == 0 {
                MemRef::write(node, addr)
            } else {
                MemRef::read(node, addr)
            });
        }
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 8 + 11 * t.len());
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_roundtrip() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn reads_legacy_v1_streams() {
        let t = sample();
        let mut buf = Vec::from(TRACE_MAGIC_V1);
        for r in t.iter() {
            buf.extend_from_slice(&(r.node.index() as u16).to_le_bytes());
            buf.push(r.op.is_write() as u8);
            buf.extend_from_slice(&r.addr.get().to_le_bytes());
        }
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn rejects_truncated_record() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::TruncatedRecord));
    }

    #[test]
    fn rejects_record_count_mismatch() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Remove exactly one record: the stream still parses, but the
        // count no longer matches.
        buf.truncate(buf.len() - 11);
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::CountMismatch {
                declared: 100,
                read: 99
            }
        ));
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A header declaring u64::MAX records must fail cleanly (the
        // stream is empty), not attempt a 170-exabyte allocation.
        let mut buf = Vec::from(TRACE_MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::CountMismatch { read: 0, .. }));
    }

    #[test]
    fn rejects_trailing_bytes_after_declared_records() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // A few stray bytes after the declared payload: not even a whole
        // record, but enough to prove the header lies about the length.
        buf.extend_from_slice(&[0xde, 0xad]);
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::TrailingBytes { declared: 100 }
        ));
    }

    #[test]
    fn rejects_trailing_whole_records_too() {
        // A concatenated second payload parses as valid records, but the
        // header still only declares the first — reject, don't truncate.
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        let extra = buf[16..27].to_vec(); // first record, again
        buf.extend_from_slice(&extra);
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::TrailingBytes { declared: 100 }
        ));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[16 + 2] = 7; // op byte of the first record
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadOp(7)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReadTraceError::BadMagic.to_string().contains("MCCT"));
        assert!(ReadTraceError::BadOp(9).to_string().contains("0x9"));
        let mismatch = ReadTraceError::CountMismatch {
            declared: 5,
            read: 3,
        };
        assert!(mismatch.to_string().contains("declares 5"));
        let trailing = ReadTraceError::TrailingBytes { declared: 7 };
        assert!(trailing.to_string().contains("past its declared 7 records"));
    }
}
