//! Binary trace serialization.
//!
//! The format is deliberately simple and self-describing: an 8-byte header
//! (magic + version) followed by fixed-width little-endian records of
//! `(node: u16, op: u8, addr: u64)`; 11 bytes per reference.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::record::{MemOp, MemRef, NodeId};
use crate::trace::Trace;
use crate::Addr;

/// Magic bytes opening every serialized trace: `MCCT` + format version 1.
pub const TRACE_MAGIC: [u8; 8] = *b"MCCT\x01\0\0\0";

/// Error produced when deserializing a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// The stream did not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The stream ended in the middle of a record.
    TruncatedRecord,
    /// A record contained an operation byte other than 0 (read) or 1 (write).
    BadOp(u8),
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::BadMagic => write!(f, "stream is not an MCCT trace"),
            ReadTraceError::TruncatedRecord => write!(f, "trace ends mid-record"),
            ReadTraceError::BadOp(b) => write!(f, "invalid operation byte {b:#x}"),
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl Trace {
    /// Serializes the trace to `writer` in the MCCT binary format.
    ///
    /// Pass `&mut writer` if you need the writer back afterwards.
    ///
    /// # Errors
    ///
    /// Returns any error produced by the underlying writer.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> std::io::Result<()> {
    /// use mcc_trace::{Addr, MemRef, NodeId, Trace};
    /// let mut t = Trace::new();
    /// t.push(MemRef::write(NodeId::new(1), Addr::new(0x40)));
    /// let mut buf = Vec::new();
    /// t.write_to(&mut buf)?;
    /// let back = Trace::read_from(&buf[..]).unwrap();
    /// assert_eq!(back, t);
    /// # Ok(())
    /// # }
    /// ```
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&TRACE_MAGIC)?;
        let mut buf = [0u8; 11];
        for r in self.iter() {
            buf[..2].copy_from_slice(&(r.node.index() as u16).to_le_bytes());
            buf[2] = r.op.is_write() as u8;
            buf[3..].copy_from_slice(&r.addr.get().to_le_bytes());
            writer.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserializes a trace from `reader`.
    ///
    /// Pass `&mut reader` if you need the reader back afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the stream is not a valid MCCT trace
    /// or the underlying reader fails.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Trace, ReadTraceError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        let mut trace = Trace::new();
        let mut buf = [0u8; 11];
        loop {
            match read_record(&mut reader, &mut buf)? {
                RecordRead::Eof => return Ok(trace),
                RecordRead::Record => {
                    let node = u16::from_le_bytes([buf[0], buf[1]]);
                    let op = match buf[2] {
                        0 => MemOp::Read,
                        1 => MemOp::Write,
                        b => return Err(ReadTraceError::BadOp(b)),
                    };
                    let addr = u64::from_le_bytes(buf[3..].try_into().expect("8 bytes"));
                    trace.push(MemRef::new(NodeId::new(node), op, Addr::new(addr)));
                }
            }
        }
    }
}

enum RecordRead {
    Eof,
    Record,
}

fn read_record<R: Read>(reader: &mut R, buf: &mut [u8; 11]) -> Result<RecordRead, ReadTraceError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(RecordRead::Eof)
            } else {
                Err(ReadTraceError::TruncatedRecord)
            };
        }
        filled += n;
    }
    Ok(RecordRead::Record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        for i in 0..100u64 {
            let node = NodeId::new((i % 16) as u16);
            let addr = Addr::new(i * 13 % 4096);
            t.push(if i % 3 == 0 {
                MemRef::write(node, addr)
            } else {
                MemRef::read(node, addr)
            });
        }
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 11 * t.len());
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_roundtrip() {
        let mut buf = Vec::new();
        Trace::new().write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn rejects_truncated_record() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::TruncatedRecord));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[8 + 2] = 7; // op byte of the first record
        let err = Trace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadOp(7)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReadTraceError::BadMagic.to_string().contains("MCCT"));
        assert!(ReadTraceError::BadOp(9).to_string().contains("0x9"));
    }
}
