//! Individual trace records: nodes, operations, references.

use core::fmt;

use crate::addr::Addr;

/// Identifier of a processing node (processor + cache + local memory).
///
/// The paper simulates sixteen-processor systems; this type supports up to
/// `u16::MAX + 1` nodes so larger configurations can be explored.
///
/// # Examples
///
/// ```
/// use mcc_trace::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "P3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from a zero-based index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the zero-based index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns an iterator over the first `count` node identifiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcc_trace::NodeId;
    /// let all: Vec<_> = NodeId::first(3).collect();
    /// assert_eq!(all, [NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn first(count: u16) -> impl Iterator<Item = NodeId> {
        (0..count).map(NodeId)
    }
}

impl From<u16> for NodeId {
    #[inline]
    fn from(index: u16) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A shared-memory operation: read or write.
///
/// # Examples
///
/// ```
/// use mcc_trace::MemOp;
/// assert!(MemOp::Write.is_write());
/// assert!(!MemOp::Read.is_write());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOp {
    /// A load from shared memory.
    #[default]
    Read,
    /// A store to shared memory.
    Write,
}

impl MemOp {
    /// Returns `true` for [`MemOp::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, MemOp::Write)
    }

    /// Returns `true` for [`MemOp::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, MemOp::Read)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOp::Read => "R",
            MemOp::Write => "W",
        })
    }
}

/// One shared-memory reference: a node performing an operation on an address.
///
/// This is the atomic unit of every trace-driven simulation in the
/// workspace.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, MemOp, MemRef, NodeId};
///
/// let r = MemRef::write(NodeId::new(2), Addr::new(0x1000));
/// assert_eq!(r.node, NodeId::new(2));
/// assert!(r.op.is_write());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The node issuing the reference.
    pub node: NodeId,
    /// Whether the reference is a read or a write.
    pub op: MemOp,
    /// The byte address referenced.
    pub addr: Addr,
}

impl MemRef {
    /// Creates a reference with an explicit operation.
    #[inline]
    pub const fn new(node: NodeId, op: MemOp, addr: Addr) -> Self {
        MemRef { node, op, addr }
    }

    /// Creates a read reference.
    #[inline]
    pub const fn read(node: NodeId, addr: Addr) -> Self {
        MemRef::new(node, MemOp::Read, addr)
    }

    /// Creates a write reference.
    #[inline]
    pub const fn write(node: NodeId, addr: Addr) -> Self {
        MemRef::new(node, MemOp::Write, addr)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.node, self.op, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(15);
        assert_eq!(n.index(), 15);
        assert_eq!(NodeId::from(15u16), n);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(0).to_string(), "P0");
        assert_eq!(NodeId::new(15).to_string(), "P15");
    }

    #[test]
    fn node_first_enumerates_in_order() {
        let nodes: Vec<_> = NodeId::first(4).collect();
        assert_eq!(nodes.len(), 4);
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mem_op_predicates() {
        assert!(MemOp::Read.is_read());
        assert!(!MemOp::Read.is_write());
        assert!(MemOp::Write.is_write());
        assert!(!MemOp::Write.is_read());
    }

    #[test]
    fn mem_ref_constructors() {
        let a = Addr::new(64);
        assert_eq!(MemRef::read(NodeId::new(1), a).op, MemOp::Read);
        assert_eq!(MemRef::write(NodeId::new(1), a).op, MemOp::Write);
    }

    #[test]
    fn mem_ref_display_is_compact() {
        let r = MemRef::write(NodeId::new(7), Addr::new(0x80));
        assert_eq!(r.to_string(), "P7 W 0x80");
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<MemOp>();
        assert_send_sync::<MemRef>();
    }
}
