//! Trace summary statistics.

use std::collections::HashSet;
use std::fmt;

use crate::addr::{Addr, BlockSize};
use crate::trace::Trace;

/// Summary statistics over a [`Trace`].
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, MemRef, NodeId, Trace};
///
/// let mut t = Trace::new();
/// t.push(MemRef::read(NodeId::new(0), Addr::new(0)));
/// t.push(MemRef::write(NodeId::new(3), Addr::new(4096)));
/// let s = t.stats();
/// assert_eq!(s.reads, 1);
/// assert_eq!(s.writes, 1);
/// assert_eq!(s.nodes, 4); // nodes 0..=3 (max index + 1)
/// assert_eq!(s.footprint_bytes, 2 * 4096);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of references.
    pub refs: usize,
    /// Number of read references.
    pub reads: usize,
    /// Number of write references.
    pub writes: usize,
    /// Number of nodes (max node index + 1).
    pub nodes: usize,
    /// Number of distinct 4 KB pages touched.
    pub pages: usize,
    /// Shared-data footprint: distinct pages × 4 KB.
    pub footprint_bytes: u64,
    /// Per-node reference counts, indexed by node index.
    pub refs_per_node: Vec<usize>,
    /// Lowest address referenced, if any.
    pub min_addr: Option<Addr>,
    /// Highest address referenced, if any.
    pub max_addr: Option<Addr>,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut stats = TraceStats {
            refs: trace.len(),
            ..TraceStats::default()
        };
        let mut pages = HashSet::new();
        for r in trace.iter() {
            if r.op.is_write() {
                stats.writes += 1;
            } else {
                stats.reads += 1;
            }
            let node = r.node.index();
            if node >= stats.refs_per_node.len() {
                stats.refs_per_node.resize(node + 1, 0);
            }
            stats.refs_per_node[node] += 1;
            pages.insert(r.addr.page());
            stats.min_addr = Some(stats.min_addr.map_or(r.addr, |m| m.min(r.addr)));
            stats.max_addr = Some(stats.max_addr.map_or(r.addr, |m| m.max(r.addr)));
        }
        stats.nodes = stats.refs_per_node.len();
        stats.pages = pages.len();
        stats.footprint_bytes = pages.len() as u64 * crate::addr::PAGE_SIZE;
        stats
    }

    /// Fraction of references that are writes, in `[0, 1]`.
    ///
    /// Returns zero for an empty trace.
    pub fn write_fraction(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.writes as f64 / self.refs as f64
        }
    }

    /// Counts distinct cache blocks at the given block size.
    ///
    /// Exposed separately from [`TraceStats::compute`] because it depends
    /// on a block size choice.
    pub fn distinct_blocks(trace: &Trace, block_size: BlockSize) -> usize {
        trace
            .iter()
            .map(|r| r.addr.block(block_size))
            .collect::<HashSet<_>>()
            .len()
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} refs ({} reads, {} writes, {:.1}% writes)",
            self.refs,
            self.reads,
            self.writes,
            self.write_fraction() * 100.0
        )?;
        write!(
            f,
            "{} nodes, {} pages ({} KB footprint)",
            self.nodes,
            self.pages,
            self.footprint_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MemRef, NodeId};

    fn sample() -> Trace {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.push(MemRef::read(NodeId::new(0), Addr::new(i * 16)));
        }
        for i in 0..5u64 {
            t.push(MemRef::write(NodeId::new(2), Addr::new(4096 + i * 16)));
        }
        t
    }

    #[test]
    fn counts() {
        let s = sample().stats();
        assert_eq!(s.refs, 15);
        assert_eq!(s.reads, 10);
        assert_eq!(s.writes, 5);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.refs_per_node, vec![10, 0, 5]);
    }

    #[test]
    fn footprint_counts_pages() {
        let s = sample().stats();
        assert_eq!(s.pages, 2);
        assert_eq!(s.footprint_bytes, 8192);
    }

    #[test]
    fn addr_bounds() {
        let s = sample().stats();
        assert_eq!(s.min_addr, Some(Addr::new(0)));
        assert_eq!(s.max_addr, Some(Addr::new(4096 + 64)));
    }

    #[test]
    fn empty_trace() {
        let s = Trace::new().stats();
        assert_eq!(s.refs, 0);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.min_addr, None);
    }

    #[test]
    fn write_fraction() {
        let s = sample().stats();
        assert!((s.write_fraction() - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_blocks_depends_on_block_size() {
        let t = sample();
        assert_eq!(TraceStats::distinct_blocks(&t, BlockSize::B16), 15);
        // 10 reads span 160 bytes -> 3 blocks of 64B; 5 writes span 80 bytes -> 2 blocks
        assert_eq!(TraceStats::distinct_blocks(&t, BlockSize::B64), 5);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let text = sample().stats().to_string();
        assert!(text.contains("15 refs"));
        assert!(text.contains("3 nodes"));
    }
}
