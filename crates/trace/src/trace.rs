//! Trace containers and interleaving.

use core::fmt;
use core::slice;

use crate::record::MemRef;
use crate::stats::TraceStats;

/// A globally ordered sequence of shared-memory references.
///
/// The order of references in the trace is the global interleaving the
/// simulators process; references by the same node appear in that node's
/// program order.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, MemRef, NodeId, Trace};
///
/// let trace: Trace = (0..4)
///     .map(|i| MemRef::read(NodeId::new(i % 2), Addr::new(u64::from(i) * 16)))
///     .collect();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace.stats().nodes, 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    refs: Vec<MemRef>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with capacity for `n` references.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            refs: Vec::with_capacity(n),
        }
    }

    /// Appends one reference.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        self.refs.push(r);
    }

    /// Returns the number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` when the trace holds no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Iterates over the references in global order.
    pub fn iter(&self) -> slice::Iter<'_, MemRef> {
        self.refs.iter()
    }

    /// Returns the references as a slice.
    pub fn as_slice(&self) -> &[MemRef] {
        &self.refs
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::compute(self)
    }

    /// Splits the trace into per-node sub-traces, preserving program order.
    ///
    /// The returned vector is indexed by node index and has
    /// `max_node_index + 1` entries (empty traces for unused nodes).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcc_trace::{Addr, MemRef, NodeId, Trace};
    /// let mut t = Trace::new();
    /// t.push(MemRef::read(NodeId::new(1), Addr::new(0)));
    /// t.push(MemRef::read(NodeId::new(0), Addr::new(16)));
    /// t.push(MemRef::write(NodeId::new(1), Addr::new(0)));
    /// let per_node = t.split_by_node();
    /// assert_eq!(per_node.len(), 2);
    /// assert_eq!(per_node[0].len(), 1);
    /// assert_eq!(per_node[1].len(), 2);
    /// ```
    pub fn split_by_node(&self) -> Vec<Trace> {
        let nodes = self
            .refs
            .iter()
            .map(|r| r.node.index() + 1)
            .max()
            .unwrap_or(0);
        let mut out = vec![Trace::new(); nodes];
        for r in &self.refs {
            out[r.node.index()].push(*r);
        }
        out
    }
}

impl FromIterator<MemRef> for Trace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        Trace {
            refs: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemRef> for Trace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        self.refs.extend(iter);
    }
}

impl From<Vec<MemRef>> for Trace {
    fn from(refs: Vec<MemRef>) -> Self {
        Trace { refs }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemRef;
    type IntoIter = slice::Iter<'a, MemRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemRef;
    type IntoIter = std::vec::IntoIter<MemRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.into_iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace of {} references", self.len())?;
        for r in self.iter().take(16) {
            writeln!(f, "  {r}")?;
        }
        if self.len() > 16 {
            writeln!(f, "  … {} more", self.len() - 16)?;
        }
        Ok(())
    }
}

/// Merges per-node reference streams into one global interleaving.
///
/// Streams are drained in bounded bursts in round-robin order, which is a
/// reasonable stand-in for the interleavings a real execution produces:
/// each node runs for a while (a burst) before another is scheduled.
///
/// # Examples
///
/// ```
/// use mcc_trace::{Addr, Interleaver, MemRef, NodeId, Trace};
///
/// let a: Trace = (0..4).map(|i| MemRef::read(NodeId::new(0), Addr::new(i * 16))).collect();
/// let b: Trace = (0..4).map(|i| MemRef::read(NodeId::new(1), Addr::new(i * 16))).collect();
/// let merged = Interleaver::new(2).interleave(vec![a, b]);
/// assert_eq!(merged.len(), 8);
/// // bursts of two: P0 P0 P1 P1 P0 P0 P1 P1
/// assert_eq!(merged.as_slice()[0].node, NodeId::new(0));
/// assert_eq!(merged.as_slice()[2].node, NodeId::new(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interleaver {
    burst: usize,
}

impl Interleaver {
    /// Creates an interleaver that drains `burst` references from each
    /// stream per scheduling round.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn new(burst: usize) -> Self {
        assert!(burst > 0, "burst must be positive");
        Interleaver { burst }
    }

    /// Merges the given per-node traces into one global trace.
    pub fn interleave(&self, streams: Vec<Trace>) -> Trace {
        let total: usize = streams.iter().map(Trace::len).sum();
        let mut cursors: Vec<std::vec::IntoIter<MemRef>> =
            streams.into_iter().map(Trace::into_iter).collect();
        let mut out = Trace::with_capacity(total);
        let mut live = cursors.len();
        while live > 0 {
            live = 0;
            for cursor in &mut cursors {
                let mut took = 0;
                while took < self.burst {
                    match cursor.next() {
                        Some(r) => {
                            out.push(r);
                            took += 1;
                        }
                        None => break,
                    }
                }
                if took == self.burst {
                    live += 1;
                }
            }
        }
        out
    }
}

impl Default for Interleaver {
    /// A burst of one reference: strict round-robin.
    fn default() -> Self {
        Interleaver::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::record::{MemRef, NodeId};

    fn reads(node: u16, n: u64) -> Trace {
        (0..n)
            .map(|i| MemRef::read(NodeId::new(node), Addr::new(i * 16)))
            .collect()
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(MemRef::read(NodeId::new(0), Addr::new(0)));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = reads(0, 3);
        t.extend(reads(1, 2));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn split_by_node_preserves_program_order() {
        let merged = Interleaver::new(1).interleave(vec![reads(0, 5), reads(1, 5)]);
        let split = merged.split_by_node();
        assert_eq!(split[0], reads(0, 5));
        assert_eq!(split[1], reads(1, 5));
    }

    #[test]
    fn interleave_preserves_all_refs() {
        let merged = Interleaver::new(3).interleave(vec![reads(0, 7), reads(1, 2), reads(2, 11)]);
        assert_eq!(merged.len(), 20);
    }

    #[test]
    fn interleave_empty_streams() {
        let merged = Interleaver::default().interleave(vec![Trace::new(), Trace::new()]);
        assert!(merged.is_empty());
        let merged = Interleaver::default().interleave(Vec::new());
        assert!(merged.is_empty());
    }

    #[test]
    #[should_panic(expected = "burst must be positive")]
    fn interleaver_rejects_zero_burst() {
        let _ = Interleaver::new(0);
    }

    #[test]
    fn display_truncates() {
        let t = reads(0, 100);
        let s = t.to_string();
        assert!(s.contains("100 references"));
        assert!(s.contains("more"));
    }
}
