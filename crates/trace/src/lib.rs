//! Shared-memory reference traces.
//!
//! This crate defines the vocabulary shared by every simulator in the
//! workspace: processor identifiers ([`NodeId`]), byte and block addresses
//! ([`Addr`], [`BlockAddr`], [`BlockSize`]), individual shared-memory
//! references ([`MemRef`]), and sequences of them ([`Trace`]).
//!
//! Traces play the role that Tango-generated SPLASH traces play in the
//! paper (Cox & Fowler, ISCA 1993, §3.2): a globally interleaved sequence
//! of reads and writes to *ordinary shared data*, excluding instruction
//! fetches, private data, and synchronization accesses.
//!
//! # Examples
//!
//! ```
//! use mcc_trace::{Addr, MemOp, MemRef, NodeId, Trace};
//!
//! let mut trace = Trace::new();
//! trace.push(MemRef::read(NodeId::new(0), Addr::new(0x40)));
//! trace.push(MemRef::write(NodeId::new(0), Addr::new(0x40)));
//! trace.push(MemRef::read(NodeId::new(1), Addr::new(0x40)));
//!
//! assert_eq!(trace.len(), 3);
//! let stats = trace.stats();
//! assert_eq!(stats.reads, 2);
//! assert_eq!(stats.writes, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod classify;
mod io;
mod record;
mod shard;
mod stats;
mod stream;
mod trace;

pub use addr::{Addr, BlockAddr, BlockSize, PageAddr, PAGE_SIZE};
pub use classify::{BlockStats, Classification, SharingPattern};
pub use io::{ReadTraceError, TRACE_MAGIC, TRACE_MAGIC_V1};
pub use record::{MemOp, MemRef, NodeId};
pub use shard::shard_of_block;
pub use stats::TraceStats;
pub use stream::{Records, TraceStream};
pub use trace::{Interleaver, Trace};
