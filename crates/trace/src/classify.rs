//! Off-line sharing-pattern classification of trace blocks.
//!
//! The paper's premise (§1, citing Weber & Gupta and Bennett, Carter &
//! Zwaenepoel) is that "parallel programs exhibit a small number of
//! distinct data-sharing patterns". This module recovers those patterns
//! from a trace after the fact, per cache block:
//!
//! * **Private** — touched by a single node.
//! * **ReadOnly** — never written (or written only during
//!   initialization by its first toucher).
//! * **Migratory** — the block's life is a sequence of single-node
//!   read-write episodes, each episode by a different node than the
//!   previous one.
//! * **ProducerConsumer** — written (almost) exclusively by one node,
//!   read by others.
//! * **WriteShared** — everything else: interleaved writers and readers.
//!
//! Classifying a synthetic workload and checking the distribution
//! against what the literature reports for the corresponding SPLASH
//! program is how this repository validates its trace substitution (see
//! the `classify` harness binary and DESIGN.md §2).

use std::collections::HashMap;
use std::fmt;

use crate::addr::{BlockAddr, BlockSize};
use crate::record::NodeId;
use crate::trace::Trace;

/// The data-sharing pattern of one block (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SharingPattern {
    /// Touched by exactly one node.
    Private,
    /// Multiple readers, no post-initialization writes.
    ReadOnly,
    /// Single-node read-write episodes handed from node to node.
    Migratory,
    /// One (dominant) writer, several readers.
    ProducerConsumer,
    /// Interleaved writes by several nodes.
    WriteShared,
}

impl SharingPattern {
    /// All patterns, in report order.
    pub const ALL: [SharingPattern; 5] = [
        SharingPattern::Private,
        SharingPattern::ReadOnly,
        SharingPattern::Migratory,
        SharingPattern::ProducerConsumer,
        SharingPattern::WriteShared,
    ];
}

impl fmt::Display for SharingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SharingPattern::Private => "private",
            SharingPattern::ReadOnly => "read-only",
            SharingPattern::Migratory => "migratory",
            SharingPattern::ProducerConsumer => "producer-consumer",
            SharingPattern::WriteShared => "write-shared",
        })
    }
}

/// Per-block access digest accumulated in one pass over the trace.
#[derive(Clone, Debug, Default)]
struct BlockDigest {
    readers: u64, // bitmask of reading nodes (<= 64)
    writers: u64, // bitmask of writing nodes
    reads: u64,
    writes: u64,
    refs: u64,
    /// Episodes: maximal runs of accesses by one node.
    episodes: u64,
    /// Episodes that contained at least one write.
    write_episodes: u64,
    /// Write episodes whose node differed from the previous write
    /// episode's node — the migratory hand-off signature.
    migrating_write_episodes: u64,
    current_node: Option<NodeId>,
    current_episode_wrote: bool,
    last_write_episode_node: Option<NodeId>,
    first_toucher: Option<NodeId>,
    writes_after_foreign_access: u64,
}

impl BlockDigest {
    fn close_episode(&mut self) {
        if let Some(node) = self.current_node {
            self.episodes += 1;
            if self.current_episode_wrote {
                self.write_episodes += 1;
                if self
                    .last_write_episode_node
                    .is_some_and(|prev| prev != node)
                {
                    self.migrating_write_episodes += 1;
                }
                self.last_write_episode_node = Some(node);
            }
        }
        self.current_episode_wrote = false;
    }

    fn classify(mut self) -> (SharingPattern, BlockStats) {
        self.close_episode();
        let node_count = (self.readers | self.writers).count_ones();
        let writer_count = self.writers.count_ones();
        let stats = BlockStats {
            refs: self.refs,
            reads: self.reads,
            writes: self.writes,
            nodes: node_count,
            episodes: self.episodes,
        };
        let pattern = if node_count <= 1 {
            SharingPattern::Private
        } else if self.writes_after_foreign_access == 0 {
            // Written at most during initialization by its first toucher.
            SharingPattern::ReadOnly
        } else if self.write_episodes >= 2
            && self.migrating_write_episodes * 10 >= self.write_episodes.saturating_sub(1) * 7
        {
            // At least 70% of write-episode successions hand off to a
            // different node.
            SharingPattern::Migratory
        } else if writer_count == 1 || self.dominant_writer_fraction().is_some_and(|f| f >= 0.9) {
            SharingPattern::ProducerConsumer
        } else {
            SharingPattern::WriteShared
        };
        (pattern, stats)
    }

    fn dominant_writer_fraction(&self) -> Option<f64> {
        // Approximation without per-writer counts: a single writer bit
        // means fraction 1.0; otherwise unknown.
        if self.writers.count_ones() == 1 {
            Some(1.0)
        } else {
            None
        }
    }
}

/// Summary statistics for one classified block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// References to the block.
    pub refs: u64,
    /// Read references.
    pub reads: u64,
    /// Write references.
    pub writes: u64,
    /// Distinct nodes that touched the block.
    pub nodes: u32,
    /// Single-node access episodes.
    pub episodes: u64,
}

/// The result of classifying a trace at a block size.
#[derive(Clone, Debug, Default)]
pub struct Classification {
    blocks: HashMap<BlockAddr, (SharingPattern, BlockStats)>,
}

impl Classification {
    /// Classifies every block of `trace` at granularity `block_size`.
    ///
    /// Nodes with index ≥ 64 are folded into bit 63 of the reader/writer
    /// sets (pattern decisions stay meaningful; exact node counts above
    /// 64 are not).
    pub fn of(trace: &Trace, block_size: BlockSize) -> Self {
        let mut digests: HashMap<BlockAddr, BlockDigest> = HashMap::new();
        for r in trace.iter() {
            let digest = digests.entry(r.addr.block(block_size)).or_default();
            let bit = 1u64 << r.node.index().min(63);
            digest.refs += 1;
            if digest.first_toucher.is_none() {
                digest.first_toucher = Some(r.node);
            }
            if digest.current_node != Some(r.node) {
                digest.close_episode();
                digest.current_node = Some(r.node);
            }
            if r.op.is_write() {
                digest.writes += 1;
                digest.writers |= bit;
                digest.current_episode_wrote = true;
                // A write counts as "post-initialization" once any other
                // node has touched the block.
                if (digest.readers | digest.writers) & !bit != 0 {
                    digest.writes_after_foreign_access += 1;
                }
            } else {
                digest.reads += 1;
                digest.readers |= bit;
            }
        }
        Classification {
            blocks: digests
                .into_iter()
                .map(|(block, digest)| (block, digest.classify()))
                .collect(),
        }
    }

    /// The pattern of `block`, if it appears in the trace.
    pub fn pattern_of(&self, block: BlockAddr) -> Option<SharingPattern> {
        self.blocks.get(&block).map(|(p, _)| *p)
    }

    /// Number of classified blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when the trace had no references.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over `(block, pattern, stats)`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, SharingPattern, BlockStats)> + '_ {
        self.blocks.iter().map(|(&b, &(p, s))| (b, p, s))
    }

    /// Blocks per pattern.
    pub fn block_counts(&self) -> HashMap<SharingPattern, usize> {
        let mut out = HashMap::new();
        for (pattern, _) in self.blocks.values() {
            *out.entry(*pattern).or_insert(0) += 1;
        }
        out
    }

    /// References per pattern — usually the more meaningful distribution
    /// (hot migratory blocks dominate traffic even when they are few).
    pub fn ref_counts(&self) -> HashMap<SharingPattern, u64> {
        let mut out = HashMap::new();
        for (pattern, stats) in self.blocks.values() {
            *out.entry(*pattern).or_insert(0) += stats.refs;
        }
        out
    }

    /// Fraction of references to blocks of `pattern`, in `[0, 1]`.
    pub fn ref_fraction(&self, pattern: SharingPattern) -> f64 {
        let total: u64 = self.blocks.values().map(|(_, s)| s.refs).sum();
        if total == 0 {
            return 0.0;
        }
        *self.ref_counts().get(&pattern).unwrap_or(&0) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::record::MemRef;

    const BS: BlockSize = BlockSize::B16;

    fn classify(trace: &Trace) -> Classification {
        Classification::of(trace, BS)
    }

    fn block(addr: u64) -> BlockAddr {
        Addr::new(addr).block(BS)
    }

    #[test]
    fn private_block() {
        let mut t = Trace::new();
        for _ in 0..10 {
            t.push(MemRef::read(NodeId::new(3), Addr::new(0)));
            t.push(MemRef::write(NodeId::new(3), Addr::new(0)));
        }
        assert_eq!(
            classify(&t).pattern_of(block(0)),
            Some(SharingPattern::Private)
        );
    }

    #[test]
    fn read_only_block_with_initialization() {
        let mut t = Trace::new();
        // Initialization writes by the first toucher do not disqualify.
        t.push(MemRef::write(NodeId::new(0), Addr::new(0)));
        t.push(MemRef::write(NodeId::new(0), Addr::new(8)));
        for n in 1..6u16 {
            t.push(MemRef::read(NodeId::new(n), Addr::new(0)));
        }
        assert_eq!(
            classify(&t).pattern_of(block(0)),
            Some(SharingPattern::ReadOnly)
        );
    }

    #[test]
    fn migratory_block() {
        let mut t = Trace::new();
        for turn in 0..12u16 {
            let n = NodeId::new(turn % 3);
            t.push(MemRef::read(n, Addr::new(0)));
            t.push(MemRef::write(n, Addr::new(0)));
        }
        assert_eq!(
            classify(&t).pattern_of(block(0)),
            Some(SharingPattern::Migratory)
        );
    }

    #[test]
    fn producer_consumer_block() {
        let mut t = Trace::new();
        for _ in 0..6 {
            t.push(MemRef::write(NodeId::new(0), Addr::new(0)));
            for n in 1..4u16 {
                t.push(MemRef::read(NodeId::new(n), Addr::new(0)));
            }
        }
        assert_eq!(
            classify(&t).pattern_of(block(0)),
            Some(SharingPattern::ProducerConsumer)
        );
    }

    #[test]
    fn write_shared_block() {
        let mut t = Trace::new();
        // Interleaved writes with interleaved readers and repeat writers:
        // no clean hand-off structure.
        for round in 0..6u16 {
            t.push(MemRef::write(NodeId::new(round % 2), Addr::new(0)));
            t.push(MemRef::write(NodeId::new(round % 2), Addr::new(0)));
            t.push(MemRef::read(NodeId::new(2), Addr::new(0)));
            t.push(MemRef::read(NodeId::new(3), Addr::new(0)));
            t.push(MemRef::write(NodeId::new(round % 2), Addr::new(0)));
        }
        assert_eq!(
            classify(&t).pattern_of(block(0)),
            Some(SharingPattern::WriteShared)
        );
    }

    #[test]
    fn ref_fractions_sum_to_one() {
        let mut t = Trace::new();
        for turn in 0..10u16 {
            t.push(MemRef::write(NodeId::new(turn % 2), Addr::new(0)));
            t.push(MemRef::read(NodeId::new(5), Addr::new(16)));
            t.push(MemRef::read(NodeId::new(6), Addr::new(16)));
        }
        let c = classify(&t);
        let total: f64 = SharingPattern::ALL.iter().map(|&p| c.ref_fraction(p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_trace() {
        let c = classify(&Trace::new());
        assert!(c.is_empty());
        assert_eq!(c.ref_fraction(SharingPattern::Migratory), 0.0);
        assert_eq!(c.pattern_of(block(0)), None);
    }

    #[test]
    fn block_stats_accumulate() {
        let mut t = Trace::new();
        t.push(MemRef::read(NodeId::new(0), Addr::new(0)));
        t.push(MemRef::write(NodeId::new(1), Addr::new(0)));
        t.push(MemRef::read(NodeId::new(1), Addr::new(0)));
        let c = classify(&t);
        let (_, _, stats) = c.iter().next().unwrap();
        assert_eq!(stats.refs, 3);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.episodes, 2);
    }

    #[test]
    fn pattern_display_names() {
        assert_eq!(SharingPattern::Migratory.to_string(), "migratory");
        assert_eq!(
            SharingPattern::ProducerConsumer.to_string(),
            "producer-consumer"
        );
    }
}
