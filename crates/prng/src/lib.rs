//! Deterministic, dependency-free pseudo-random numbers.
//!
//! Every stochastic component of this workspace — the workload
//! generators, the interconnect fault injector, and the randomized test
//! harnesses — draws from an explicitly seeded [`SplitMix64`] stream.
//! There is no global RNG and no entropy source: the same seed always
//! produces the same sequence, on every platform, which is what makes
//! whole simulations (including fault-injected ones) bit-reproducible.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) is a tiny counter-based generator with a
//! 2^64 period and excellent statistical quality for simulation use. It
//! is not cryptographic and must never be used where unpredictability
//! matters.
//!
//! # Examples
//!
//! ```
//! use mcc_prng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//!
//! let roll = a.gen_range(0..6);
//! assert!(roll < 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A seeded SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    ///
    /// Equal seeds produce equal streams; nearby seeds produce
    /// well-separated streams (the seed is scrambled by the first
    /// [`SplitMix64::next_u64`] call).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The generator's current internal state.
    ///
    /// Together with [`SplitMix64::new`] this makes the stream position
    /// checkpointable: `SplitMix64::new(r.state())` continues exactly
    /// where `r` left off, because the state *is* the whole generator.
    ///
    /// ```
    /// use mcc_prng::SplitMix64;
    ///
    /// let mut r = SplitMix64::new(42);
    /// r.next_u64();
    /// let mut resumed = SplitMix64::new(r.state());
    /// assert_eq!(resumed.next_u64(), r.next_u64());
    /// ```
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open, as written).
    ///
    /// Uses the widening-multiply reduction, which avoids the modulo
    /// bias of `next_u64() % n` without rejection loops.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range over an empty range");
        let span = range.end - range.start;
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// A `true` draw with probability `numerator / 1_000_000`
    /// (parts-per-million). Values of one million or more always yield
    /// `true`; zero always yields `false`. Integer-exact, so fault plans
    /// expressed in ppm are reproducible with no floating-point rounding.
    pub fn chance_ppm(&mut self, numerator: u32) -> bool {
        if numerator == 0 {
            return false;
        }
        self.gen_range(0..1_000_000) < u64::from(numerator)
    }

    /// A fresh generator split off this one, advancing this stream by
    /// one draw. Useful for giving each subsystem (or each property-test
    /// case) an independent deterministic stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_are_stable() {
        // Known-answer test pinning the algorithm: SplitMix64 with
        // seed 0 produces this published first output.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.gen_range(10..16);
            assert!((10..16).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn gen_range_singleton() {
        let mut r = SplitMix64::new(4);
        assert_eq!(r.gen_range(9..10), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        SplitMix64::new(0).gen_range(5..5);
    }

    #[test]
    fn chance_ppm_extremes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!r.chance_ppm(0));
            assert!(r.chance_ppm(1_000_000));
            assert!(r.chance_ppm(2_000_000));
        }
    }

    #[test]
    fn chance_ppm_rate_is_roughly_right() {
        let mut r = SplitMix64::new(6);
        let hits = (0..100_000).filter(|_| r.chance_ppm(100_000)).count();
        // 10% ± 1% over 100k draws.
        assert!((9_000..=11_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut r = SplitMix64::new(9);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut resumed = SplitMix64::new(r.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), r.next_u64());
        }
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut a = SplitMix64::new(8);
        let mut b = a.fork();
        let mut c = a.fork();
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
