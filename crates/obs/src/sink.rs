//! Pluggable event sinks.
//!
//! Engines hold an `Option<SharedSink>`; the default `None` means the
//! emission sites reduce to one branch and the simulation is exactly
//! the un-instrumented program — the bit-exactness guarantees in the
//! golden tests rely on this. When a sink *is* attached, every emitted
//! [`Event`] is forwarded under a mutex. Sinks are deliberately simple
//! single-writer objects; sharded runs give each shard its own sink and
//! merge afterwards rather than contending on one.

use crate::event::Event;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// A consumer of protocol events.
///
/// `Send` is a supertrait so sinks can ride into shard threads.
pub trait EventSink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffered output. The default is a no-op.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything. Attaching it is equivalent to attaching no
/// sink at all; it exists so call sites that *require* a sink have an
/// explicit "off" value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// Keeps the last `capacity` events in a bounded ring buffer.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    /// Total events ever emitted, including those the ring has dropped.
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// The retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    /// Total events emitted into the ring over its lifetime.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*event);
        self.seen += 1;
    }
}

/// Retains *every* event in order. Unbounded — intended for bounded
/// runs where the full stream is post-processed (JSONL export, metrics
/// replay, shard-order merging).
#[derive(Clone, Debug, Default)]
pub struct BufferSink {
    events: Vec<Event>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, yielding the captured events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for BufferSink {
    fn emit(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// Streams events as JSON Lines to a writer.
///
/// Write errors are sticky: the first error stops further output and
/// is reported by [`EventSink::flush`] (and by [`JsonlSink::finish`]).
pub struct JsonlSink<W: Write + Send> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: &Path) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and surfaces any sticky write error.
    pub fn finish(mut self) -> io::Result<u64> {
        EventSink::flush(&mut self)?;
        Ok(self.lines)
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Forwards each event to several shared sinks, in order.
#[derive(Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
}

impl FanoutSink {
    /// A fanout over the given sinks.
    pub fn new(sinks: Vec<SharedSink>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn emit(&mut self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        for sink in &self.sinks {
            sink.flush()?;
        }
        Ok(())
    }
}

/// A cloneable, thread-safe handle to a type-erased sink.
///
/// Engines store this. Construct one with [`SharedSink::new`] when the
/// concrete sink never needs to be read back, or build an
/// `Arc<Mutex<T>>` yourself, keep a typed clone, and hand the engine
/// [`SharedSink::from_arc`] — afterwards lock the typed `Arc` to drain
/// a ring or collect a buffer.
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<dyn EventSink>>,
}

impl SharedSink {
    /// Wraps a concrete sink.
    pub fn new(sink: impl EventSink + 'static) -> SharedSink {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Shares an existing `Arc<Mutex<T>>`, letting the caller keep the
    /// typed handle for later inspection.
    pub fn from_arc<T: EventSink + 'static>(arc: Arc<Mutex<T>>) -> SharedSink {
        SharedSink { inner: arc }
    }

    /// Emits one event. A poisoned mutex (a panicked shard mid-emit)
    /// is tolerated: observability must never turn a salvageable run
    /// into a panic.
    pub fn emit(&self, event: &Event) {
        match self.inner.lock() {
            Ok(mut sink) => sink.emit(event),
            Err(poisoned) => poisoned.into_inner().emit(event),
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        match self.inner.lock() {
            Ok(mut sink) => sink.flush(),
            Err(poisoned) => poisoned.into_inner().flush(),
        }
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink")
    }
}

/// Builds a `(typed handle, shared handle)` pair for a sink whose
/// contents are read back after the run.
pub fn shared<T: EventSink + 'static>(sink: T) -> (Arc<Mutex<T>>, SharedSink) {
    let arc = Arc::new(Mutex::new(sink));
    let handle = SharedSink::from_arc(arc.clone());
    (arc, handle)
}

/// Locks a typed sink handle, tolerating poisoning.
pub fn lock_sink<T: EventSink>(arc: &Arc<Mutex<T>>) -> MutexGuard<'_, T> {
    match arc.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepKind;

    fn ev(step: u64) -> Event {
        Event::Step {
            step,
            block: step,
            node: 0,
            kind: StepKind::ReadHit,
            control: 0,
            data: 0,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.emit(&ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        let steps: Vec<u64> = ring.events().map(|e| e.step().unwrap()).collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let mut ring = RingSink::new(0);
        ring.emit(&ev(1));
        ring.emit(&ev(2));
        assert_eq!(ring.to_vec(), vec![ev(2)]);
    }

    #[test]
    fn buffer_keeps_order() {
        let mut buf = BufferSink::new();
        for i in 0..4 {
            buf.emit(&ev(i));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.events()[3], ev(3));
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&ev(1));
        sink.emit(&ev(2));
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json(line).unwrap();
        }
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let (ring, ring_handle) = shared(RingSink::new(8));
        let (buf, buf_handle) = shared(BufferSink::new());
        let mut fan = FanoutSink::new(vec![ring_handle, buf_handle]);
        fan.emit(&ev(7));
        assert_eq!(lock_sink(&ring).len(), 1);
        assert_eq!(lock_sink(&buf).len(), 1);
    }

    #[test]
    fn shared_sink_is_send_and_debug() {
        fn assert_send<T: Send>(_: &T) {}
        let sink = SharedSink::new(NullSink);
        assert_send(&sink);
        assert_eq!(format!("{sink:?}"), "SharedSink");
        sink.emit(&ev(1));
        sink.flush().unwrap();
    }
}
