//! The live telemetry plane: a concurrent metrics registry with an
//! embedded scrape endpoint and a periodic snapshot writer.
//!
//! [`Registry`] is a plain single-writer data structure; this module
//! is its concurrent counterpart for programs that are *running* —
//! the live service, the sweep supervisor, long soaks. A [`Telemetry`]
//! hands out `Arc` handles to named atomic counters, gauges, and
//! [`AtomicHistogram`]s; hot paths keep the handles and record with
//! relaxed atomics (no lock, no string lookup), while any number of
//! observers cut consistent-enough snapshots:
//!
//! * [`Telemetry::snapshot`] — a point-in-time [`Registry`];
//! * [`Telemetry::prometheus`] — Prometheus text exposition
//!   (version 0.0.4), histograms as cumulative `_bucket{le="..."}`
//!   series on the power-of-two edges;
//! * [`Telemetry::snapshot_line`] — one timestamped JSON line
//!   embedding the registry, the unit of `*.telemetry.jsonl` files;
//! * [`TelemetryServer`] — a hand-rolled HTTP/1.0 endpoint
//!   (`std::net::TcpListener`, zero deps) serving `/metrics`, `/json`,
//!   and `/healthz`;
//! * [`SnapshotWriter`] — a background thread appending snapshot
//!   lines to a file on a fixed cadence, with a final line at stop;
//! * [`TelemetrySink`] — an [`EventSink`] that folds the protocol
//!   event stream into telemetry counters, accumulating locally and
//!   publishing every `publish_every` records so the per-event cost
//!   stays a handful of register adds (the bench bin gates this at
//!   ≤3% over `NullSink` on the FastEngine loop).
//!
//! Everything here reads the wall clock; none of it is reachable from
//! the deterministic simulation path.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::event::Event;
use crate::json::Json;
use crate::metrics::{names, Log2Histogram, Registry};
use crate::sink::EventSink;
use crate::span::{AtomicHistogram, Stage};

fn read_map<K: Ord, V>(
    lock: &RwLock<BTreeMap<K, V>>,
) -> std::sync::RwLockReadGuard<'_, BTreeMap<K, V>> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_map<K: Ord, V>(
    lock: &RwLock<BTreeMap<K, V>>,
) -> std::sync::RwLockWriteGuard<'_, BTreeMap<K, V>> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A concurrent registry of named atomic metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a write lock
/// once per name; recording through the returned handles is lock-free.
pub struct Telemetry {
    started: Instant,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    /// Snapshot sequence, shared by every observer so lines from the
    /// writer and the HTTP endpoint are totally ordered.
    snapshot_seq: AtomicU64,
    /// Last snapshot timestamp handed out, to keep `ts_ms` monotone
    /// even if the wall clock steps backwards mid-run.
    last_ts_ms: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An empty telemetry plane; uptime counts from here.
    pub fn new() -> Telemetry {
        Telemetry {
            started: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            snapshot_seq: AtomicU64::new(0),
            last_ts_ms: AtomicU64::new(0),
        }
    }

    /// Handle to the named counter, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = read_map(&self.counters).get(name) {
            return c.clone();
        }
        write_map(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Handle to the named gauge, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<AtomicI64> {
        if let Some(g) = read_map(&self.gauges).get(name) {
            return g.clone();
        }
        write_map(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Handle to the named histogram, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        if let Some(h) = read_map(&self.histograms).get(name) {
            return h.clone();
        }
        write_map(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Handle to a pipeline stage's latency histogram (microseconds).
    pub fn stage(&self, stage: Stage) -> Arc<AtomicHistogram> {
        self.histogram(&stage.metric_name())
    }

    /// Milliseconds since the plane was created.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Cuts a point-in-time [`Registry`] from the live atomics.
    ///
    /// Counters recorded *while* the cut is in progress may or may not
    /// be included, but every value is a real value some metric held;
    /// nothing tears below the level of one metric.
    pub fn snapshot(&self) -> Registry {
        let mut reg = Registry::new();
        for (name, c) in read_map(&self.counters).iter() {
            reg.counter_add(name, c.load(Ordering::Relaxed));
        }
        for (name, g) in read_map(&self.gauges).iter() {
            reg.gauge_set(name, g.load(Ordering::Relaxed));
        }
        for (name, h) in read_map(&self.histograms).iter() {
            reg.histogram_merge(name, &h.snapshot());
        }
        reg
    }

    /// One `*.telemetry.jsonl` line: a timestamped envelope around
    /// [`Telemetry::snapshot`]. `seq` is strictly increasing across
    /// all observers of this plane; `ts_ms` is monotone non-decreasing
    /// wall time (Unix epoch milliseconds). No trailing newline.
    pub fn snapshot_line(&self) -> String {
        let seq = self.snapshot_seq.fetch_add(1, Ordering::Relaxed);
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let ts = self.last_ts_ms.fetch_max(now, Ordering::Relaxed).max(now);
        Json::Obj(vec![
            ("ts_ms".to_string(), Json::u64(ts)),
            ("seq".to_string(), Json::u64(seq)),
            ("uptime_ms".to_string(), Json::u64(self.uptime_ms())),
            ("registry".to_string(), self.snapshot().to_json_value()),
        ])
        .to_string()
    }

    /// Prometheus text exposition (format version 0.0.4) of the
    /// current snapshot. Metric names are sanitized (`.` → `_`) and
    /// prefixed `mcc_`; histograms become cumulative `_bucket` series
    /// on the power-of-two upper edges plus `_sum`/`_count`.
    pub fn prometheus(&self) -> String {
        let reg = self.snapshot();
        let mut out = String::new();
        for (name, value) in reg.counters() {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in reg.gauges() {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        {
            let n = prometheus_name("telemetry.uptime_ms");
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", self.uptime_ms()));
        }
        for (name, h) in reg.histograms() {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let hi = h.max_bucket().map_or(0, |i| i + 1);
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets()[..hi].iter().enumerate() {
                cumulative = cumulative.saturating_add(c);
                let le = if i == 0 {
                    "0".to_string()
                } else {
                    ((1u128 << i) - 1).to_string()
                };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {count}\n{n}_sum {sum}\n{n}_count {count}\n",
                count = h.count(),
                sum = h.sum(),
            ));
        }
        out
    }
}

/// `mcc_` + the metric name with every non-alphanumeric byte replaced
/// by `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mcc_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// The embedded scrape endpoint: a background accept loop over a
/// non-blocking [`TcpListener`], speaking just enough HTTP/1.0 for
/// `curl` and Prometheus.
///
/// Routes: `/metrics` (text exposition), `/json` (one snapshot line),
/// `/healthz`. Every response closes the connection. Dropping the
/// server stops the thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9900"`; port 0 picks a free
    /// port — read it back from [`TelemetryServer::addr`]) and serves
    /// `telemetry` until dropped or [`TelemetryServer::shutdown`].
    pub fn serve(telemetry: Arc<Telemetry>, addr: &str) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name("mcc-telemetry-http".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // A slow or broken scraper must never take
                            // the plane down; errors are per-connection.
                            let _ = serve_connection(stream, &telemetry);
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(mut stream: TcpStream, telemetry: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n")
                    || req.windows(2).any(|w| w == b"\n\n")
                    || req.len() >= 8192
                {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&req);
    let path = head
        .split_whitespace()
        .nth(1)
        .unwrap_or("/")
        .split('?')
        .next()
        .unwrap_or("/")
        .to_string();
    let (status, content_type, body) = match path.as_str() {
        "/" | "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            telemetry.prometheus(),
        ),
        "/json" | "/snapshot" => {
            let mut line = telemetry.snapshot_line();
            line.push('\n');
            ("200 OK", "application/json", line)
        }
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", format!("no route {path}\n")),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A matching zero-dep HTTP/1.0 GET for polling a [`TelemetryServer`]
/// (`mcc-top` and the tests use this). `addr` is `host:port`, with an
/// optional `http://` prefix; returns the response body.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let addr = addr.trim_start_matches("http://").trim_end_matches('/');
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response (no header/body split)",
        ));
    };
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(io::Error::other(format!("HTTP status {status} for {path}")));
    }
    Ok(body.to_string())
}

/// A background thread appending [`Telemetry::snapshot_line`]s to a
/// file every `every`, plus one final line when stopped — so the file
/// always ends with the run's last observable state.
pub struct SnapshotWriter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<u64>>>,
}

impl SnapshotWriter {
    /// Creates (truncating) `path` and starts the writer.
    pub fn start(
        telemetry: Arc<Telemetry>,
        path: &Path,
        every: Duration,
    ) -> io::Result<SnapshotWriter> {
        let mut file = File::create(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let every = every.max(Duration::from_millis(10));
        let handle = thread::Builder::new()
            .name("mcc-telemetry-snap".to_string())
            .spawn(move || -> io::Result<u64> {
                let mut lines = 0u64;
                loop {
                    let stopping = stop_flag.load(Ordering::Relaxed);
                    let mut line = telemetry.snapshot_line();
                    line.push('\n');
                    file.write_all(line.as_bytes())?;
                    file.flush()?;
                    lines += 1;
                    if stopping {
                        return Ok(lines);
                    }
                    let mut slept = Duration::ZERO;
                    while slept < every && !stop_flag.load(Ordering::Relaxed) {
                        let nap = (every - slept).min(Duration::from_millis(20));
                        thread::sleep(nap);
                        slept += nap;
                    }
                }
            })?;
        Ok(SnapshotWriter {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the writer (after its final line) and returns the number
    /// of lines written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or(Ok(0)),
            None => Ok(0),
        }
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// How many records a [`TelemetrySink`] accumulates locally before
/// publishing to the shared atomics.
pub const DEFAULT_PUBLISH_EVERY: u64 = 4096;

/// An [`EventSink`] that feeds a [`Telemetry`] plane from the protocol
/// event stream.
///
/// The counter names mirror the [`MetricsRecorder`](crate::metrics::
/// MetricsRecorder) aggregates ([`names`]), so offline and live views
/// agree; the per-kind/per-rule breakdown counters are deliberately
/// omitted — they would cost a string format per event on the hot
/// path. Everything is accumulated in plain locals and published every
/// [`DEFAULT_PUBLISH_EVERY`] records (and on flush/drop/shard
/// boundaries), so a mid-run scrape may lag by at most one batch.
pub struct TelemetrySink {
    publish_every: u64,
    pending_rare: u64,
    local: LocalAgg,
    records: Arc<AtomicU64>,
    control: Arc<AtomicU64>,
    data: Arc<AtomicU64>,
    promotes: Arc<AtomicU64>,
    demotes: Arc<AtomicU64>,
    invalidations: Arc<AtomicU64>,
    nacks: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
    backoff_units: Arc<AtomicU64>,
    checkpoint_saves: Arc<AtomicU64>,
    checkpoint_loads: Arc<AtomicU64>,
    shards_started: Arc<AtomicU64>,
    shards_finished: Arc<AtomicU64>,
    net_migratory: Arc<AtomicI64>,
    messages_per_ref: Arc<AtomicHistogram>,
    backoff_hist: Arc<AtomicHistogram>,
}

struct LocalAgg {
    records: u64,
    control: u64,
    data: u64,
    promotes: u64,
    demotes: u64,
    invalidations: u64,
    nacks: u64,
    retries: u64,
    backoff_units: u64,
    checkpoint_saves: u64,
    checkpoint_loads: u64,
    shards_started: u64,
    shards_finished: u64,
    net_migratory: i64,
    // Raw bucket tallies, not full `Log2Histogram`s: the hot path only
    // pays one shift-class increment per event, and `publish` rebuilds
    // the histograms from these plus sums the sink already tracks
    // (Σ msgs = control + data, Σ backoff = backoff_units).
    msg_buckets: [u64; 65],
    backoff_buckets: [u64; 65],
}

impl Default for LocalAgg {
    fn default() -> LocalAgg {
        LocalAgg {
            records: 0,
            control: 0,
            data: 0,
            promotes: 0,
            demotes: 0,
            invalidations: 0,
            nacks: 0,
            retries: 0,
            backoff_units: 0,
            checkpoint_saves: 0,
            checkpoint_loads: 0,
            shards_started: 0,
            shards_finished: 0,
            net_migratory: 0,
            msg_buckets: [0; 65],
            backoff_buckets: [0; 65],
        }
    }
}

impl TelemetrySink {
    /// A sink publishing into `telemetry` every `publish_every`
    /// records (minimum 1).
    pub fn new(telemetry: &Telemetry, publish_every: u64) -> TelemetrySink {
        TelemetrySink {
            publish_every: publish_every.max(1),
            pending_rare: 0,
            local: LocalAgg::default(),
            records: telemetry.counter(names::RECORDS),
            control: telemetry.counter(names::CONTROL),
            data: telemetry.counter(names::DATA),
            promotes: telemetry.counter(names::PROMOTES),
            demotes: telemetry.counter(names::DEMOTES),
            invalidations: telemetry.counter(names::INVALIDATIONS),
            nacks: telemetry.counter(names::NACKS),
            retries: telemetry.counter(names::RETRIES),
            backoff_units: telemetry.counter(names::BACKOFF_UNITS),
            checkpoint_saves: telemetry.counter(names::CHECKPOINT_SAVES),
            checkpoint_loads: telemetry.counter(names::CHECKPOINT_LOADS),
            shards_started: telemetry.counter(names::SHARDS_STARTED),
            shards_finished: telemetry.counter(names::SHARDS_FINISHED),
            net_migratory: telemetry.gauge(names::NET_MIGRATORY),
            messages_per_ref: telemetry.histogram(names::MESSAGES_PER_REF),
            backoff_hist: telemetry.histogram(names::BACKOFF_HIST),
        }
    }

    /// Publishes all locally accumulated deltas to the shared atomics.
    pub fn publish(&mut self) {
        if self.pending_rare == 0 && self.local.records == 0 {
            return;
        }
        self.pending_rare = 0;
        let l = std::mem::take(&mut self.local);
        let pairs: [(&Arc<AtomicU64>, u64); 13] = [
            (&self.records, l.records),
            (&self.control, l.control),
            (&self.data, l.data),
            (&self.promotes, l.promotes),
            (&self.demotes, l.demotes),
            (&self.invalidations, l.invalidations),
            (&self.nacks, l.nacks),
            (&self.retries, l.retries),
            (&self.backoff_units, l.backoff_units),
            (&self.checkpoint_saves, l.checkpoint_saves),
            (&self.checkpoint_loads, l.checkpoint_loads),
            (&self.shards_started, l.shards_started),
            (&self.shards_finished, l.shards_finished),
        ];
        for (counter, delta) in pairs {
            if delta > 0 {
                counter.fetch_add(delta, Ordering::Relaxed);
            }
        }
        if l.net_migratory != 0 {
            self.net_migratory
                .fetch_add(l.net_migratory, Ordering::Relaxed);
        }
        // Rebuild the histograms from the raw tallies. The sums are
        // exact: every Step records `control + data` into `msgs`, and
        // every Backoff records `units` into `backoff`.
        let msgs =
            Log2Histogram::from_parts(l.msg_buckets, u128::from(l.control) + u128::from(l.data));
        let backoff = Log2Histogram::from_parts(l.backoff_buckets, u128::from(l.backoff_units));
        publish_histogram(&self.messages_per_ref, &msgs);
        publish_histogram(&self.backoff_hist, &backoff);
    }
}

/// Adds a local histogram's buckets into a shared atomic histogram.
fn publish_histogram(shared: &AtomicHistogram, local: &Log2Histogram) {
    if local.count() == 0 {
        return;
    }
    shared.add_buckets(local);
}

impl EventSink for TelemetrySink {
    fn emit(&mut self, event: &Event) {
        let l = &mut self.local;
        // Step dominates the stream (one per simulated reference), so
        // its arm is kept to four plain adds and one bucket increment;
        // everything else, including the dirty-tracking for rare
        // events, lives past the early return.
        if let Event::Step { control, data, .. } = *event {
            l.records += 1;
            l.control += control;
            l.data += data;
            l.msg_buckets[Log2Histogram::bucket_of(control + data)] += 1;
            if l.records >= self.publish_every {
                self.publish();
            }
            return;
        }
        self.pending_rare += 1;
        match *event {
            Event::Step { .. } => {} // handled above
            Event::Promote { .. } => {
                l.promotes += 1;
                l.net_migratory += 1;
            }
            Event::Demote { .. } => {
                l.demotes += 1;
                l.net_migratory -= 1;
            }
            Event::Invalidation { .. } => l.invalidations += 1,
            Event::Nack { .. } => l.nacks += 1,
            Event::Retry { .. } => l.retries += 1,
            Event::Backoff { units, .. } => {
                l.backoff_units += units;
                l.backoff_buckets[Log2Histogram::bucket_of(units)] += 1;
            }
            Event::CheckpointSaved { .. } => {
                l.checkpoint_saves += 1;
                self.publish();
            }
            Event::CheckpointLoaded { .. } => {
                l.checkpoint_loads += 1;
                self.publish();
            }
            Event::ShardStarted { .. } => {
                l.shards_started += 1;
                self.publish();
            }
            Event::ShardFinished { .. } => {
                l.shards_finished += 1;
                self.publish();
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.publish();
        Ok(())
    }
}

impl Drop for TelemetrySink {
    fn drop(&mut self) {
        self.publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepKind;
    use crate::metrics::MetricsRecorder;

    fn step(step: u64, control: u64, data: u64) -> Event {
        Event::Step {
            step,
            block: 1,
            node: 0,
            kind: StepKind::WriteMiss,
            control,
            data,
        }
    }

    #[test]
    fn handles_are_shared_by_name() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.fetch_add(3, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 3);
        t.gauge("g").store(-5, Ordering::Relaxed);
        t.histogram("h").record(9);
        let reg = t.snapshot();
        assert_eq!(reg.counter("x"), 3);
        assert_eq!(reg.gauge("g"), -5);
        assert_eq!(reg.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_line_is_monotone_and_parses() {
        let t = Telemetry::new();
        t.counter("c").fetch_add(1, Ordering::Relaxed);
        let a = Json::parse(&t.snapshot_line()).unwrap();
        let b = Json::parse(&t.snapshot_line()).unwrap();
        let seq = |v: &Json| v.get("seq").and_then(Json::as_u64).unwrap();
        let ts = |v: &Json| v.get("ts_ms").and_then(Json::as_u64).unwrap();
        assert!(seq(&b) > seq(&a));
        assert!(ts(&b) >= ts(&a));
        let reg = Registry::from_json_value(a.get("registry").unwrap()).unwrap();
        assert_eq!(reg.counter("c"), 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let t = Telemetry::new();
        t.counter("live.ops_acked").fetch_add(7, Ordering::Relaxed);
        t.gauge("shard.0.queue_depth").store(2, Ordering::Relaxed);
        let h = t.stage(Stage::EngineStep);
        h.record(0);
        h.record(1);
        h.record(5);
        let text = t.prometheus();
        assert!(text.contains("# TYPE mcc_live_ops_acked counter\nmcc_live_ops_acked 7\n"));
        assert!(text.contains("mcc_shard_0_queue_depth 2\n"));
        assert!(text.contains("mcc_stage_engine_step_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("mcc_stage_engine_step_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("mcc_stage_engine_step_us_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("mcc_stage_engine_step_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("mcc_stage_engine_step_us_count 3\n"));
        assert!(text.contains("mcc_stage_engine_step_us_sum 6\n"));
        assert!(text.contains("mcc_telemetry_uptime_ms "));
    }

    #[test]
    fn sink_matches_metrics_recorder_aggregates() {
        let t = Telemetry::new();
        let mut sink = TelemetrySink::new(&t, 3); // force mid-stream publishes
        let mut rec = MetricsRecorder::new(1 << 30);
        let events = vec![
            Event::ShardStarted {
                shard: 0,
                records: 5,
            },
            step(1, 2, 1),
            Event::Promote {
                step: 1,
                block: 1,
                node: 0,
                rule: crate::event::Rule::WriteHitShared,
            },
            step(2, 0, 0),
            Event::Nack {
                step: 3,
                block: 1,
                node: 0,
                attempt: 1,
            },
            Event::Retry {
                step: 3,
                block: 1,
                node: 0,
                attempt: 1,
            },
            Event::Backoff {
                step: 3,
                block: 1,
                node: 0,
                units: 4,
            },
            step(3, 1, 1),
            Event::Demote {
                step: 3,
                block: 1,
                node: 0,
                rule: crate::event::Rule::ReadMiss,
            },
            step(4, 3, 0),
            Event::ShardFinished {
                shard: 0,
                records: 5,
            },
        ];
        for ev in &events {
            sink.emit(ev);
            rec.emit(ev);
        }
        EventSink::flush(&mut sink).unwrap();
        let live = t.snapshot();
        let offline = rec.finish();
        for name in [
            names::RECORDS,
            names::CONTROL,
            names::DATA,
            names::PROMOTES,
            names::DEMOTES,
            names::NACKS,
            names::RETRIES,
            names::BACKOFF_UNITS,
            names::SHARDS_STARTED,
            names::SHARDS_FINISHED,
        ] {
            assert_eq!(live.counter(name), offline.counter(name), "counter {name}");
        }
        assert_eq!(
            live.gauge(names::NET_MIGRATORY),
            offline.gauge(names::NET_MIGRATORY)
        );
        assert_eq!(
            live.histogram(names::MESSAGES_PER_REF).unwrap().buckets(),
            offline
                .histogram(names::MESSAGES_PER_REF)
                .unwrap()
                .buckets()
        );
        assert_eq!(
            live.histogram(names::BACKOFF_HIST).unwrap().buckets(),
            offline.histogram(names::BACKOFF_HIST).unwrap().buckets()
        );
    }

    #[test]
    fn server_serves_metrics_json_health_and_404() {
        let t = Arc::new(Telemetry::new());
        t.counter("live.ops_acked").fetch_add(11, Ordering::Relaxed);
        let server = TelemetryServer::serve(t.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("mcc_live_ops_acked 11"));
        let json = http_get(&addr, "/json").unwrap();
        let v = Json::parse(json.trim()).unwrap();
        let reg = Registry::from_json_value(v.get("registry").unwrap()).unwrap();
        assert_eq!(reg.counter("live.ops_acked"), 11);
        assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");
        assert!(http_get(&addr, "/nope").is_err());
        server.shutdown();
    }

    #[test]
    fn snapshot_writer_appends_monotone_lines() {
        let dir = std::env::temp_dir().join(format!(
            "mcc-telemetry-test-{}-{}",
            std::process::id(),
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry.jsonl");
        let t = Arc::new(Telemetry::new());
        let writer = SnapshotWriter::start(t.clone(), &path, Duration::from_millis(20)).unwrap();
        t.counter("c").fetch_add(5, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(60));
        let lines = writer.finish().unwrap();
        assert!(
            lines >= 2,
            "expected at least 2 snapshot lines, got {lines}"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let mut prev_seq = None;
        let mut count = 0u64;
        for line in text.lines() {
            let v = Json::parse(line).unwrap();
            let seq = v.get("seq").and_then(Json::as_u64).unwrap();
            if let Some(p) = prev_seq {
                assert!(seq > p);
            }
            prev_seq = Some(seq);
            count += 1;
        }
        assert_eq!(count, lines);
        // The final line carries the final counter value.
        let last = Json::parse(text.lines().last().unwrap()).unwrap();
        let reg = Registry::from_json_value(last.get("registry").unwrap()).unwrap();
        assert_eq!(reg.counter("c"), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
