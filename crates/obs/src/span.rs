//! Causal spans for the live request pipeline.
//!
//! A *span* is one client request's journey through the concurrent
//! service: minted at the client, carried on the wire next to the
//! request (`mcc-live`'s `Request` embeds a [`SpanId`]), and observed
//! at each pipeline stage. The stages are fixed — the [`Stage`] enum
//! is the taxonomy — and each stage's wall-clock latency is recorded
//! into a lock-free [`AtomicHistogram`] keyed by the stage's metric
//! name, so a scraper can read p50/p99 per stage *while the run is in
//! flight* without stopping any thread.
//!
//! Two invariants keep tracing inert:
//!
//! * **No wall-clock reads on the deterministic path.** Spans time the
//!   *service* plumbing (queue wait, WAL fsync, reply send); the engine
//!   step itself is timed from outside, around the same `try_step`
//!   call the untraced path makes. Simulation results never depend on
//!   a clock.
//! * **Lock-free recording.** [`AtomicHistogram::record`] is a couple
//!   of relaxed `fetch_add`s; there is no mutex a slow scraper could
//!   hold against the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Log2Histogram;

/// The pipeline stages a live request passes through, in causal order.
///
/// `Total` is the client-observed end-to-end latency (send to ack,
/// across retries); the other stages partition where that time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Wire flight plus time spent in the shard inbox before dequeue.
    QueueWait,
    /// One deterministic engine `try_step` (timed from outside it).
    EngineStep,
    /// WAL frame encode + append write.
    WalAppend,
    /// WAL fsync before the ack (the durability stall).
    WalFsync,
    /// Journal + staged-event commit under the shard journal lock
    /// (includes the WAL stages when a durable WAL is attached).
    Commit,
    /// Handing the reply to the (possibly chaotic) reply channel.
    ReplySend,
    /// Client-side exponential backoff sleep before a retry.
    Backoff,
    /// Client-observed end-to-end request latency, across retries.
    Total,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::QueueWait,
        Stage::EngineStep,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::Commit,
        Stage::ReplySend,
        Stage::Backoff,
        Stage::Total,
    ];

    /// Stable snake_case label.
    pub const fn label(&self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::EngineStep => "engine_step",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::Commit => "commit",
            Stage::ReplySend => "reply_send",
            Stage::Backoff => "backoff",
            Stage::Total => "total",
        }
    }

    /// The histogram name this stage records under (values are in
    /// microseconds).
    pub fn metric_name(&self) -> String {
        format!("stage.{}_us", self.label())
    }
}

/// A compact causal identifier for one client request.
///
/// Minted once per logical operation (not per retry) from the issuing
/// client id and its per-client sequence number, so the id is unique
/// across the run, stable across retransmits, and cheap to carry in a
/// `Copy` wire struct: `(client + 1)` in the top 16 bits, the sequence
/// number in the low 48.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    const SEQ_BITS: u32 = 48;
    const SEQ_MASK: u64 = (1 << SpanId::SEQ_BITS) - 1;

    /// Mints the span id for `client`'s `seq`-th operation.
    pub fn mint(client: u16, seq: u64) -> SpanId {
        SpanId((u64::from(client) + 1) << SpanId::SEQ_BITS | (seq & SpanId::SEQ_MASK))
    }

    /// A sentinel id no real request carries (client bits all zero).
    pub const NONE: SpanId = SpanId(0);

    /// The issuing client, if this is a real span.
    pub fn client(&self) -> Option<u16> {
        let c = self.0 >> SpanId::SEQ_BITS;
        if c == 0 {
            None
        } else {
            Some((c - 1) as u16)
        }
    }

    /// The per-client sequence number (low 48 bits).
    pub fn seq(&self) -> u64 {
        self.0 & SpanId::SEQ_MASK
    }

    /// The raw 64-bit encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// A lock-free power-of-two histogram: the concurrent twin of
/// [`Log2Histogram`], safe to record into from many threads while a
/// scraper snapshots it.
///
/// All operations are relaxed atomics. A snapshot cut mid-record can
/// therefore be off by in-flight increments, but it is always a valid
/// histogram: [`Log2Histogram::from_parts`] recomputes the count from
/// the buckets, so `count == Σ buckets` holds by construction.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 65],
    /// Sum of recorded values, saturating at `u64::MAX`.
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[Log2Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.add_sum(value);
    }

    /// Folds a locally accumulated [`Log2Histogram`] into the live
    /// buckets — the publish path for sinks that batch on the hot path
    /// and flush periodically.
    pub fn add_buckets(&self, local: &Log2Histogram) {
        for (live, &c) in self.buckets.iter().zip(local.buckets().iter()) {
            if c > 0 {
                live.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.add_sum(u64::try_from(local.sum()).unwrap_or(u64::MAX));
    }

    /// Saturating atomic add into `sum`: `fetch_add` wraps on
    /// overflow, and a long soak must never report a tiny wrapped sum.
    /// The CAS loop only retries under contention near the limit,
    /// which no real workload reaches.
    fn add_sum(&self, value: u64) {
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Cuts a point-in-time [`Log2Histogram`] from the live buckets.
    pub fn snapshot(&self) -> Log2Histogram {
        let mut buckets = [0u64; 65];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        let sum = self.sum.load(Ordering::Relaxed);
        Log2Histogram::from_parts(buckets, u128::from(sum))
    }

    /// Total recorded values in the current snapshot.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, b| acc.saturating_add(b.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_round_trips_client_and_seq() {
        let id = SpanId::mint(7, 123_456);
        assert_eq!(id.client(), Some(7));
        assert_eq!(id.seq(), 123_456);
        assert_eq!(SpanId::NONE.client(), None);
        // Distinct clients / seqs give distinct ids.
        assert_ne!(SpanId::mint(0, 0), SpanId::NONE);
        assert_ne!(SpanId::mint(0, 1), SpanId::mint(1, 0));
        assert_ne!(SpanId::mint(u16::MAX, 5), SpanId::mint(u16::MAX - 1, 5));
    }

    #[test]
    fn stage_taxonomy_is_stable() {
        let labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "queue_wait",
                "engine_step",
                "wal_append",
                "wal_fsync",
                "commit",
                "reply_send",
                "backoff",
                "total"
            ]
        );
        assert_eq!(Stage::EngineStep.metric_name(), "stage.engine_step_us");
    }

    #[test]
    fn atomic_histogram_matches_sequential_twin() {
        let atomic = AtomicHistogram::new();
        let mut plain = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 7, 1000, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        // The atomic sum saturates at u64::MAX where the sequential
        // histogram keeps a u128, so compare buckets/count/quantiles.
        let snap = atomic.snapshot();
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(atomic.count(), plain.count());
        assert_eq!(
            snap.quantile_upper_bound(0.5),
            plain.quantile_upper_bound(0.5)
        );
        assert_eq!(snap.sum(), u128::from(u64::MAX)); // saturated
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 40_000);
        let expected: u128 = (0..4u128)
            .flat_map(|t| (0..10_000u128).map(move |i| t * 10_000 + i))
            .sum();
        assert_eq!(snap.sum(), expected);
    }
}
