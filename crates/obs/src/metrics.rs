//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms, with interval (per-N-records) snapshots.
//!
//! A [`Registry`] is a plain data structure — it does not observe
//! anything by itself. [`MetricsRecorder`] is the [`EventSink`] that
//! feeds one from a protocol event stream, cutting a cumulative
//! snapshot of all counters every `interval` references so sweeps can
//! plot traffic and classification-flip rate over time.
//!
//! Export formats: JSON (via the crate's own writer/parser, so the CI
//! round-trip check needs no external dependency) and CSV/text tables
//! via `mcc-stats`.

use crate::event::Event;
use crate::json::{Json, JsonError};
use crate::sink::EventSink;
use mcc_stats::Table;
use std::collections::BTreeMap;

/// A histogram with power-of-two buckets.
///
/// Bucket 0 counts the value `0`; bucket `i > 0` counts values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one value. Counts saturate rather than wrap, so a
    /// histogram fed from long-lived atomic accumulators can never
    /// panic or go backwards.
    pub fn record(&mut self, value: u64) {
        let i = Log2Histogram::bucket_of(value);
        self.buckets[i] = self.buckets[i].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(value));
    }

    /// Rebuilds a histogram from raw bucket counts and an exact sum —
    /// the shape a lock-free atomic accumulator snapshots into. The
    /// total count is recomputed from the buckets (saturating), so the
    /// `count == Σ buckets` invariant the quantile walk relies on holds
    /// even if the parts were sampled while concurrent recording was
    /// in flight.
    pub fn from_parts(buckets: [u64; 65], sum: u128) -> Log2Histogram {
        let count = buckets.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
        Log2Histogram {
            buckets,
            count,
            sum,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Human label for a bucket: `"0"`, `"1"`, `"[2,4)"`, …
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            _ => format!("[{},{})", 1u128 << (i - 1), 1u128 << i),
        }
    }

    /// Index of the highest non-empty bucket, if any value was
    /// recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Folds another histogram into this one, bucket by bucket —
    /// equivalent to having recorded both value streams into a single
    /// histogram (the bucketing is order-independent). Saturates at
    /// the numeric limits instead of overflowing.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// An upper bound on the `q`-quantile of the recorded values
    /// (`q` in `[0, 1]`): the exclusive upper edge of the first bucket
    /// whose cumulative count reaches `ceil(q * count)`. Resolution is
    /// the power-of-two bucket width; `None` on an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            // Saturating: bucket counts can individually saturate near
            // u64::MAX, and the running total must not overflow past
            // the (also saturated) rank.
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                });
            }
        }
        None
    }
}

/// A cumulative snapshot of all counters, cut at a record boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalSnapshot {
    /// References observed when the snapshot was cut (cumulative).
    pub records: u64,
    /// Cumulative counter values at that point.
    pub counters: BTreeMap<String, u64>,
}

/// Named counters, gauges, and histograms, plus interval snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Log2Histogram>,
    intervals: Vec<IntervalSnapshot>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `delta` (possibly negative) to a gauge.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        *self.gauges.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge (0 if never touched).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a value into a histogram, creating it if needed.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Folds a whole histogram into the named slot, creating it empty
    /// first. This is how a telemetry snapshot lands an
    /// [`crate::span::AtomicHistogram`] in a plain registry.
    pub fn histogram_merge(&mut self, name: &str, h: &Log2Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, i64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &BTreeMap<String, Log2Histogram> {
        &self.histograms
    }

    /// The interval snapshots, in cut order.
    pub fn intervals(&self) -> &[IntervalSnapshot] {
        &self.intervals
    }

    /// Cuts a cumulative snapshot of all counters at `records`
    /// references. Idempotent per boundary: a second cut at the same
    /// record count replaces the first.
    pub fn snapshot_interval(&mut self, records: u64) {
        if let Some(last) = self.intervals.last_mut() {
            if last.records == records {
                last.counters = self.counters.clone();
                return;
            }
        }
        self.intervals.push(IntervalSnapshot {
            records,
            counters: self.counters.clone(),
        });
    }

    /// Serializes the registry to JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The registry as a [`Json`] value, for embedding inside larger
    /// documents (telemetry snapshot lines nest one of these under a
    /// timestamped envelope).
    pub fn to_json_value(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::u64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::i64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let hi = h.max_bucket().map_or(0, |i| i + 1);
                    (
                        k.clone(),
                        Json::Arr(h.buckets[..hi].iter().map(|&c| Json::u64(c)).collect()),
                    )
                })
                .collect(),
        );
        let intervals = Json::Arr(
            self.intervals
                .iter()
                .map(|snap| {
                    Json::Obj(vec![
                        ("records".to_string(), Json::u64(snap.records)),
                        (
                            "counters".to_string(),
                            Json::Obj(
                                snap.counters
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::u64(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("intervals".to_string(), intervals),
        ])
    }

    /// Parses a registry back from [`Registry::to_json`] output.
    ///
    /// Histogram `count`/`sum` are reconstructed from the buckets using
    /// each bucket's lower bound, so a parsed histogram's `sum` is a
    /// lower bound rather than exact; bucket counts round-trip exactly.
    pub fn from_json(text: &str) -> Result<Registry, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        Registry::from_json_value(&v)
    }

    /// [`Registry::from_json`] over an already-parsed [`Json`] value.
    pub fn from_json_value(v: &Json) -> Result<Registry, String> {
        if v.as_obj().is_none() {
            return Err("top-level value is not an object".to_string());
        }
        let mut reg = Registry::new();
        let obj_u64 = |v: &Json, what: &str| -> Result<BTreeMap<String, u64>, String> {
            v.as_obj()
                .ok_or_else(|| format!("{what} is not an object"))?
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("{what}.{k} is not a u64"))
                })
                .collect()
        };
        if let Some(counters) = v.get("counters") {
            reg.counters = obj_u64(counters, "counters")?;
        }
        if let Some(gauges) = v.get("gauges") {
            for (k, val) in gauges
                .as_obj()
                .ok_or_else(|| "gauges is not an object".to_string())?
            {
                let n = val
                    .as_i64()
                    .ok_or_else(|| format!("gauges.{k} is not an i64"))?;
                reg.gauges.insert(k.clone(), n);
            }
        }
        if let Some(hists) = v.get("histograms") {
            for (k, val) in hists
                .as_obj()
                .ok_or_else(|| "histograms is not an object".to_string())?
            {
                let arr = val
                    .as_arr()
                    .ok_or_else(|| format!("histograms.{k} is not an array"))?;
                if arr.len() > 65 {
                    return Err(format!("histograms.{k} has too many buckets"));
                }
                let mut h = Log2Histogram::new();
                for (i, c) in arr.iter().enumerate() {
                    let c = c
                        .as_u64()
                        .ok_or_else(|| format!("histograms.{k}[{i}] is not a u64"))?;
                    h.buckets[i] = c;
                    h.count = h.count.saturating_add(c);
                    let lower = if i <= 1 { i as u128 } else { 1u128 << (i - 1) };
                    h.sum = h.sum.saturating_add(lower.saturating_mul(u128::from(c)));
                }
                reg.histograms.insert(k.clone(), h);
            }
        }
        if let Some(intervals) = v.get("intervals") {
            for (i, snap) in intervals
                .as_arr()
                .ok_or_else(|| "intervals is not an array".to_string())?
                .iter()
                .enumerate()
            {
                let records = snap
                    .get("records")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("intervals[{i}].records missing"))?;
                let counters = obj_u64(
                    snap.get("counters")
                        .ok_or_else(|| format!("intervals[{i}].counters missing"))?,
                    "interval counters",
                )?;
                reg.intervals.push(IntervalSnapshot { records, counters });
            }
        }
        Ok(reg)
    }

    /// A per-interval *delta* table over the given counter names: one
    /// row per snapshot, each cell the increase since the previous
    /// snapshot. Render it with `to_text`/`to_markdown`/`to_csv`.
    pub fn intervals_table(&self, columns: &[&str]) -> Table {
        let mut headers = vec!["records".to_string()];
        headers.extend(columns.iter().map(|c| c.to_string()));
        let mut table = Table::new(headers);
        let mut prev: BTreeMap<&str, u64> = BTreeMap::new();
        for snap in &self.intervals {
            let mut cells = vec![snap.records.to_string()];
            for &col in columns {
                let now = snap.counters.get(col).copied().unwrap_or(0);
                let before = prev.get(col).copied().unwrap_or(0);
                cells.push(now.saturating_sub(before).to_string());
                prev.insert(col, now);
            }
            table.row(cells);
        }
        table
    }

    /// A `name,value` table of all counters and gauges.
    pub fn totals_table(&self) -> Table {
        let mut table = Table::new(["metric", "value"]);
        for (name, value) in &self.counters {
            table.row([name.clone(), value.to_string()]);
        }
        for (name, value) in &self.gauges {
            table.row([format!("{name} (gauge)"), value.to_string()]);
        }
        table
    }
}

/// Counter names the recorder maintains (the interesting subset; the
/// full set also includes one `step.<kind>` counter per step kind and
/// one `promote.<rule>` / `demote.<rule>` counter per rule).
pub mod names {
    /// References observed (one per `Step` event).
    pub const RECORDS: &str = "records";
    /// Control messages charged.
    pub const CONTROL: &str = "messages.control";
    /// Data messages charged.
    pub const DATA: &str = "messages.data";
    /// Promotions to migratory.
    pub const PROMOTES: &str = "classification.promotes";
    /// Demotions from migratory.
    pub const DEMOTES: &str = "classification.demotes";
    /// Remote copies invalidated.
    pub const INVALIDATIONS: &str = "invalidations";
    /// Fabric NACKs observed.
    pub const NACKS: &str = "faults.nacks";
    /// Transaction retries observed.
    pub const RETRIES: &str = "faults.retries";
    /// Backoff units charged.
    pub const BACKOFF_UNITS: &str = "faults.backoff_units";
    /// Checkpoints published.
    pub const CHECKPOINT_SAVES: &str = "checkpoint.saves";
    /// Checkpoint restores.
    pub const CHECKPOINT_LOADS: &str = "checkpoint.loads";
    /// Shards started.
    pub const SHARDS_STARTED: &str = "shards.started";
    /// Shards finished.
    pub const SHARDS_FINISHED: &str = "shards.finished";
    /// Gauge: promotions minus demotions (net migratory flips).
    pub const NET_MIGRATORY: &str = "classification.net_migratory";
    /// Histogram: messages charged per reference.
    pub const MESSAGES_PER_REF: &str = "messages_per_ref";
    /// Histogram: backoff units per backoff episode.
    pub const BACKOFF_HIST: &str = "backoff_units";
}

/// Default snapshot cadence: one cumulative snapshot every this many
/// references.
pub const DEFAULT_INTERVAL: u64 = 50_000;

/// An [`EventSink`] that aggregates the event stream into a
/// [`Registry`], cutting an interval snapshot every `interval`
/// references.
///
/// Reference counting is local (one per observed `Step` event), so the
/// recorder works identically on a live engine stream and on a merged
/// multi-shard replay.
#[derive(Clone, Debug)]
pub struct MetricsRecorder {
    interval: u64,
    records_seen: u64,
    registry: Registry,
}

impl MetricsRecorder {
    /// A recorder cutting snapshots every `interval` references
    /// (minimum 1).
    pub fn new(interval: u64) -> MetricsRecorder {
        MetricsRecorder {
            interval: interval.max(1),
            records_seen: 0,
            registry: Registry::new(),
        }
    }

    /// Replays a recorded event stream through a fresh recorder.
    pub fn replay<'a>(events: impl IntoIterator<Item = &'a Event>, interval: u64) -> Registry {
        let mut rec = MetricsRecorder::new(interval);
        for ev in events {
            rec.emit(ev);
        }
        rec.finish()
    }

    /// The registry built so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Finalizes the recorder: cuts a final snapshot at the last
    /// observed record count (if it is not already on a boundary) and
    /// returns the registry.
    pub fn finish(mut self) -> Registry {
        if self.records_seen > 0 {
            self.registry.snapshot_interval(self.records_seen);
        }
        self.registry
    }
}

impl EventSink for MetricsRecorder {
    fn emit(&mut self, event: &Event) {
        let reg = &mut self.registry;
        match *event {
            Event::Step {
                kind,
                control,
                data,
                ..
            } => {
                self.records_seen += 1;
                reg.counter_add(names::RECORDS, 1);
                reg.counter_add(names::CONTROL, control);
                reg.counter_add(names::DATA, data);
                reg.counter_add(&format!("step.{}", kind.label()), 1);
                reg.histogram_record(names::MESSAGES_PER_REF, control + data);
                if self.records_seen.is_multiple_of(self.interval) {
                    reg.snapshot_interval(self.records_seen);
                }
            }
            Event::Promote { rule, .. } => {
                reg.counter_add(names::PROMOTES, 1);
                reg.counter_add(&format!("promote.{}", rule.label()), 1);
                reg.gauge_add(names::NET_MIGRATORY, 1);
            }
            Event::Demote { rule, .. } => {
                reg.counter_add(names::DEMOTES, 1);
                reg.counter_add(&format!("demote.{}", rule.label()), 1);
                reg.gauge_add(names::NET_MIGRATORY, -1);
            }
            Event::Invalidation { .. } => reg.counter_add(names::INVALIDATIONS, 1),
            Event::Nack { .. } => reg.counter_add(names::NACKS, 1),
            Event::Retry { .. } => reg.counter_add(names::RETRIES, 1),
            Event::Backoff { units, .. } => {
                reg.counter_add(names::BACKOFF_UNITS, units);
                reg.histogram_record(names::BACKOFF_HIST, units);
            }
            Event::CheckpointSaved { .. } => reg.counter_add(names::CHECKPOINT_SAVES, 1),
            Event::CheckpointLoaded { .. } => reg.counter_add(names::CHECKPOINT_LOADS, 1),
            Event::ShardStarted { .. } => reg.counter_add(names::SHARDS_STARTED, 1),
            Event::ShardFinished { .. } => reg.counter_add(names::SHARDS_FINISHED, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Rule, StepKind};

    fn step(step: u64, control: u64, data: u64) -> Event {
        Event::Step {
            step,
            block: 1,
            node: 0,
            kind: StepKind::WriteMiss,
            control,
            data,
        }
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max_bucket(), Some(10));
        assert_eq!(Log2Histogram::bucket_label(2), "[2,4)");
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let (a_vals, b_vals) = ([0u64, 1, 7, 1000], [2u64, 3, 4, u64::MAX]);
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut single = Log2Histogram::new();
        for v in a_vals {
            a.record(v);
            single.record(v);
        }
        for v in b_vals {
            b.record(v);
            single.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.sum(), single.sum());
        assert_eq!(a.buckets(), single.buckets());
        assert_eq!(
            a.quantile_upper_bound(0.5),
            single.quantile_upper_bound(0.5)
        );

        // Merging an empty histogram is the identity.
        let before = single.clone();
        single.merge(&Log2Histogram::new());
        assert_eq!(single.buckets(), before.buckets());
        assert_eq!(single.count(), before.count());
    }

    #[test]
    fn histogram_quantile_upper_bounds() {
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.5), None);
        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Median of 1..=100 is 50, bucket [32,64) → upper bound 63.
        assert_eq!(h.quantile_upper_bound(0.5), Some(63));
        // p99 → 99, bucket [64,128) → 127; p100 → same top bucket.
        assert_eq!(h.quantile_upper_bound(0.99), Some(127));
        assert_eq!(h.quantile_upper_bound(1.0), Some(127));
        // q = 0 clamps to the first recorded value's bucket.
        assert_eq!(h.quantile_upper_bound(0.0), Some(1));
        let mut zeros = Log2Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.quantile_upper_bound(0.5), Some(0));
        let mut top = Log2Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.quantile_upper_bound(0.5), Some(u64::MAX));
    }

    #[test]
    fn histogram_empty_edge_cases() {
        let empty = Log2Histogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.max_bucket(), None);
        for q in [0.0, 0.5, 1.0, -3.0, 7.0] {
            assert_eq!(empty.quantile_upper_bound(q), None);
        }
        // Merging empty into empty stays empty.
        let mut into = Log2Histogram::new();
        into.merge(&empty);
        assert_eq!(into, Log2Histogram::new());
    }

    #[test]
    fn histogram_single_bucket_quantiles() {
        // All mass in one bucket: every quantile resolves to that
        // bucket's exclusive upper edge, including clamped-out-of-range
        // q values.
        let mut h = Log2Histogram::new();
        for _ in 0..10 {
            h.record(5); // bucket [4,8)
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0, -1.0, 2.0] {
            assert_eq!(h.quantile_upper_bound(q), Some(7), "q={q}");
        }
        assert_eq!(h.max_bucket(), Some(3));
    }

    #[test]
    fn histogram_saturating_counts_stay_finite() {
        // Two histograms whose bucket counts and sums sit at the
        // numeric limits: merge must saturate (not wrap), and the
        // quantile walk must still terminate even though the running
        // cumulative total would overflow u64.
        let mut buckets = [0u64; 65];
        buckets[2] = u64::MAX;
        buckets[10] = u64::MAX;
        let mut a = Log2Histogram::from_parts(buckets, u128::MAX);
        assert_eq!(a.count(), u64::MAX, "count saturates at construction");
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.buckets()[2], u64::MAX);
        assert_eq!(a.buckets()[10], u64::MAX);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.sum(), u128::MAX);
        assert_eq!(a.quantile_upper_bound(0.25), Some(3));
        assert_eq!(a.quantile_upper_bound(1.0), Some(3));
        // Recording on a saturated histogram keeps saturating.
        a.record(u64::MAX);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.sum(), u128::MAX);
    }

    #[test]
    fn recorder_counts_and_snapshots() {
        let mut rec = MetricsRecorder::new(2);
        rec.emit(&step(1, 2, 1));
        rec.emit(&Event::Promote {
            step: 1,
            block: 1,
            node: 0,
            rule: Rule::WriteHitShared,
        });
        rec.emit(&step(2, 1, 0));
        rec.emit(&step(3, 0, 0));
        let reg = rec.finish();
        assert_eq!(reg.counter(names::RECORDS), 3);
        assert_eq!(reg.counter(names::CONTROL), 3);
        assert_eq!(reg.counter(names::DATA), 1);
        assert_eq!(reg.counter(names::PROMOTES), 1);
        assert_eq!(reg.counter("promote.write-hit-shared"), 1);
        assert_eq!(reg.gauge(names::NET_MIGRATORY), 1);
        // One snapshot at the 2-record boundary, one final at 3.
        assert_eq!(reg.intervals().len(), 2);
        assert_eq!(reg.intervals()[0].records, 2);
        assert_eq!(reg.intervals()[1].records, 3);
        // The interval table shows deltas.
        let table = reg.intervals_table(&[names::CONTROL]);
        let csv = table.to_csv();
        assert!(csv.contains("2,3"), "csv was: {csv}");
        assert!(csv.contains("3,0"), "csv was: {csv}");
    }

    #[test]
    fn json_round_trip_preserves_everything_observable() {
        let mut rec = MetricsRecorder::new(2);
        for i in 1..=5 {
            rec.emit(&step(i, i, 1));
        }
        rec.emit(&Event::Backoff {
            step: 5,
            block: 1,
            node: 0,
            units: 12,
        });
        rec.emit(&Event::Demote {
            step: 5,
            block: 1,
            node: 0,
            rule: Rule::ReadMiss,
        });
        let reg = rec.finish();
        let text = reg.to_json();
        let back = Registry::from_json(&text).unwrap();
        assert_eq!(back.counters(), reg.counters());
        assert_eq!(back.gauges(), reg.gauges());
        assert_eq!(back.intervals(), reg.intervals());
        for (name, h) in reg.histograms() {
            assert_eq!(back.histogram(name).unwrap().buckets(), h.buckets());
        }
        // And the re-serialized form is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_garbage() {
        for bad in [
            "",
            "[1]",
            "{\"counters\":[1]}",
            "{\"counters\":{\"a\":-1}}",
            "{\"histograms\":{\"h\":[1,\"x\"]}}",
            "{\"intervals\":[{\"counters\":{}}]}",
        ] {
            assert!(Registry::from_json(bad).is_err(), "should reject {bad:?}");
        }
    }
}
