//! The structured protocol event vocabulary.
//!
//! Every engine in the workspace (the directory engine, the snooping
//! bus simulator, and the execution-driven simulator, which embeds the
//! directory engine) narrates its run as a stream of [`Event`] values.
//! Events are compact `Copy` records with no heap data, so emitting one
//! into a ring buffer is a handful of stores and the null-sink path
//! reduces to a single `Option` test.
//!
//! Events are *derived observations*: they are computed from values the
//! engine already holds and never feed back into protocol decisions, so
//! attaching or detaching a sink cannot perturb simulation results.

use crate::json::Json;
use std::fmt;

/// What a single reference did, as charged by the engine.
///
/// The directory variants mirror `mcc-core`'s per-step outcome
/// vocabulary one-to-one; the `Bus*` variants belong to the snooping
/// simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Directory: read serviced locally, no traffic.
    ReadHit,
    /// Directory: write hit on a Dirty copy, no coherence activity.
    SilentWrite,
    /// Directory: first write to a migratory-clean copy — pre-granted
    /// permission used, zero messages (the adaptive win).
    GrantedWrite,
    /// Directory: write hit on a clean Exclusive copy; permission
    /// fetched from the home.
    ExclusiveUpgrade,
    /// Directory: write hit on a Shared copy — an upgrade that
    /// invalidates the other copies.
    SharedUpgrade,
    /// Directory: read miss serviced by *migrating* the only copy.
    ReadMissMigrate,
    /// Directory: read miss serviced by replicating a copy.
    ReadMissReplicate,
    /// Directory: write miss.
    WriteMiss,
    /// Bus: read hit, no bus transaction.
    BusReadHit,
    /// Bus: write hit on a line held with write permission (silent).
    BusWriteHitSilent,
    /// Bus: write hit that must broadcast an invalidation.
    BusWriteHitInvalidate,
    /// Bus: read miss.
    BusReadMiss,
    /// Bus: write miss.
    BusWriteMiss,
}

impl StepKind {
    /// All kinds, for table rendering and parser validation.
    pub const ALL: [StepKind; 13] = [
        StepKind::ReadHit,
        StepKind::SilentWrite,
        StepKind::GrantedWrite,
        StepKind::ExclusiveUpgrade,
        StepKind::SharedUpgrade,
        StepKind::ReadMissMigrate,
        StepKind::ReadMissReplicate,
        StepKind::WriteMiss,
        StepKind::BusReadHit,
        StepKind::BusWriteHitSilent,
        StepKind::BusWriteHitInvalidate,
        StepKind::BusReadMiss,
        StepKind::BusWriteMiss,
    ];

    /// Stable wire label (used in JSONL and metric names).
    pub const fn label(self) -> &'static str {
        match self {
            StepKind::ReadHit => "read-hit",
            StepKind::SilentWrite => "silent-write",
            StepKind::GrantedWrite => "granted-write",
            StepKind::ExclusiveUpgrade => "exclusive-upgrade",
            StepKind::SharedUpgrade => "shared-upgrade",
            StepKind::ReadMissMigrate => "read-miss-migrate",
            StepKind::ReadMissReplicate => "read-miss-replicate",
            StepKind::WriteMiss => "write-miss",
            StepKind::BusReadHit => "bus-read-hit",
            StepKind::BusWriteHitSilent => "bus-write-hit-silent",
            StepKind::BusWriteHitInvalidate => "bus-write-hit-invalidate",
            StepKind::BusReadMiss => "bus-read-miss",
            StepKind::BusWriteMiss => "bus-write-miss",
        }
    }

    /// Inverse of [`StepKind::label`].
    pub fn from_label(label: &str) -> Option<StepKind> {
        StepKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// The detection rule (§2 of the paper, Figure 3 transitions) that
/// triggered a migratory promotion or demotion.
///
/// Each variant names the protocol transition at which the directory
/// (or the snooping cache) re-examined a block's classification; the
/// taxonomy table in DESIGN.md §10 maps them back to the paper's text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Write hit on a clean-exclusive line: the writer differs from the
    /// last invalidator while exactly one copy exists — migration
    /// evidence that spans an interval in which the block left all
    /// caches (the "remember when uncached" refinement).
    WriteHitCleanExclusive,
    /// Write hit on a shared line: exactly two copies exist and the
    /// writer is not the node that performed the last invalidation —
    /// the paper's core read-then-write migration detector.
    WriteHitShared,
    /// Write miss: either fresh evidence (single remote copy, different
    /// invalidator) or counter-evidence (the Stenström variant demotes
    /// here when the copy moved without being written).
    WriteMiss,
    /// Read miss on a migratory block whose only copy is still clean:
    /// the block is about to move *unmodified*, which contradicts the
    /// migratory hypothesis, so it is demoted.
    ReadMiss,
    /// The last cached copy was dropped and the policy does not
    /// remember classifications for uncached blocks: reset to the
    /// initial (non-migratory) state.
    CopyDropped,
    /// Snooping bus: a miss was filled in a migratory state because the
    /// previous holder (in S2/dirty) asserted migration on the snoop.
    BusMigratoryFill,
}

impl Rule {
    /// All rules, for taxonomy tables and parser validation.
    pub const ALL: [Rule; 6] = [
        Rule::WriteHitCleanExclusive,
        Rule::WriteHitShared,
        Rule::WriteMiss,
        Rule::ReadMiss,
        Rule::CopyDropped,
        Rule::BusMigratoryFill,
    ];

    /// Stable wire label (used in JSONL and metric names).
    pub const fn label(self) -> &'static str {
        match self {
            Rule::WriteHitCleanExclusive => "write-hit-clean-exclusive",
            Rule::WriteHitShared => "write-hit-shared",
            Rule::WriteMiss => "write-miss",
            Rule::ReadMiss => "read-miss",
            Rule::CopyDropped => "copy-dropped",
            Rule::BusMigratoryFill => "bus-migratory-fill",
        }
    }

    /// Inverse of [`Rule::label`].
    pub fn from_label(label: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.label() == label)
    }
}

/// One observed protocol event.
///
/// `step` is the engine's reference counter at emission time (1-based:
/// the value *after* the reference was counted). `block` is the block
/// index (address divided by block size) and `node` the requesting
/// cache. Shard framing events carry the shard id instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// A reference completed; `control`/`data` are the messages it was
    /// charged (after any fault-retry overhead, which is reported
    /// separately via [`Event::Nack`] / [`Event::Retry`]).
    Step {
        step: u64,
        block: u64,
        node: u16,
        kind: StepKind,
        control: u64,
        data: u64,
    },
    /// A block was reclassified *to* migratory.
    Promote {
        step: u64,
        block: u64,
        node: u16,
        rule: Rule,
    },
    /// A block was reclassified *away from* migratory.
    Demote {
        step: u64,
        block: u64,
        node: u16,
        rule: Rule,
    },
    /// A remote copy was invalidated (one event per invalidated copy;
    /// `node` is the cache that lost its copy).
    Invalidation { step: u64, block: u64, node: u16 },
    /// A request was NACKed by the unreliable fabric.
    Nack {
        step: u64,
        block: u64,
        node: u16,
        attempt: u32,
    },
    /// A transaction attempt failed and will be retried.
    Retry {
        step: u64,
        block: u64,
        node: u16,
        attempt: u32,
    },
    /// Exponential backoff charged before a retry.
    Backoff {
        step: u64,
        block: u64,
        node: u16,
        units: u64,
    },
    /// A checkpoint snapshot was published at this record cursor.
    CheckpointSaved { step: u64, records: u64 },
    /// A run resumed from a checkpoint at this record cursor.
    CheckpointLoaded { step: u64, records: u64 },
    /// A shard began simulating its sub-trace of `records` references.
    ShardStarted { shard: u32, records: u64 },
    /// A shard finished its sub-trace.
    ShardFinished { shard: u32, records: u64 },
}

impl Event {
    /// Stable wire label for the event type.
    pub const fn label(&self) -> &'static str {
        match self {
            Event::Step { .. } => "step",
            Event::Promote { .. } => "promote",
            Event::Demote { .. } => "demote",
            Event::Invalidation { .. } => "invalidation",
            Event::Nack { .. } => "nack",
            Event::Retry { .. } => "retry",
            Event::Backoff { .. } => "backoff",
            Event::CheckpointSaved { .. } => "checkpoint-saved",
            Event::CheckpointLoaded { .. } => "checkpoint-loaded",
            Event::ShardStarted { .. } => "shard-started",
            Event::ShardFinished { .. } => "shard-finished",
        }
    }

    /// The block the event concerns, when it concerns one.
    pub const fn block(&self) -> Option<u64> {
        match *self {
            Event::Step { block, .. }
            | Event::Promote { block, .. }
            | Event::Demote { block, .. }
            | Event::Invalidation { block, .. }
            | Event::Nack { block, .. }
            | Event::Retry { block, .. }
            | Event::Backoff { block, .. } => Some(block),
            _ => None,
        }
    }

    /// The engine step (reference counter) at emission, when the event
    /// is tied to one.
    pub const fn step(&self) -> Option<u64> {
        match *self {
            Event::Step { step, .. }
            | Event::Promote { step, .. }
            | Event::Demote { step, .. }
            | Event::Invalidation { step, .. }
            | Event::Nack { step, .. }
            | Event::Retry { step, .. }
            | Event::Backoff { step, .. }
            | Event::CheckpointSaved { step, .. }
            | Event::CheckpointLoaded { step, .. } => Some(step),
            Event::ShardStarted { .. } | Event::ShardFinished { .. } => None,
        }
    }

    /// Encodes the event as one compact JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> =
            vec![("ev".to_string(), Json::Str(self.label().to_string()))];
        let num = |fields: &mut Vec<(String, Json)>, key: &str, v: u64| {
            fields.push((key.to_string(), Json::u64(v)));
        };
        match *self {
            Event::Step {
                step,
                block,
                node,
                kind,
                control,
                data,
            } => {
                num(&mut fields, "step", step);
                num(&mut fields, "block", block);
                num(&mut fields, "node", u64::from(node));
                fields.push(("kind".to_string(), Json::Str(kind.label().to_string())));
                num(&mut fields, "control", control);
                num(&mut fields, "data", data);
            }
            Event::Promote {
                step,
                block,
                node,
                rule,
            }
            | Event::Demote {
                step,
                block,
                node,
                rule,
            } => {
                num(&mut fields, "step", step);
                num(&mut fields, "block", block);
                num(&mut fields, "node", u64::from(node));
                fields.push(("rule".to_string(), Json::Str(rule.label().to_string())));
            }
            Event::Invalidation { step, block, node } => {
                num(&mut fields, "step", step);
                num(&mut fields, "block", block);
                num(&mut fields, "node", u64::from(node));
            }
            Event::Nack {
                step,
                block,
                node,
                attempt,
            }
            | Event::Retry {
                step,
                block,
                node,
                attempt,
            } => {
                num(&mut fields, "step", step);
                num(&mut fields, "block", block);
                num(&mut fields, "node", u64::from(node));
                num(&mut fields, "attempt", u64::from(attempt));
            }
            Event::Backoff {
                step,
                block,
                node,
                units,
            } => {
                num(&mut fields, "step", step);
                num(&mut fields, "block", block);
                num(&mut fields, "node", u64::from(node));
                num(&mut fields, "units", units);
            }
            Event::CheckpointSaved { step, records }
            | Event::CheckpointLoaded { step, records } => {
                num(&mut fields, "step", step);
                num(&mut fields, "records", records);
            }
            Event::ShardStarted { shard, records } | Event::ShardFinished { shard, records } => {
                num(&mut fields, "shard", u64::from(shard));
                num(&mut fields, "records", records);
            }
        }
        Json::Obj(fields).to_string()
    }

    /// Decodes one JSONL line produced by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let label = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"ev\" field".to_string())?;
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer \"{key}\" field"))
        };
        let node = |key: &str| -> Result<u16, String> {
            u16::try_from(u(key)?).map_err(|_| format!("\"{key}\" out of range"))
        };
        let ev = match label {
            "step" => Event::Step {
                step: u("step")?,
                block: u("block")?,
                node: node("node")?,
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(StepKind::from_label)
                    .ok_or_else(|| "missing or unknown \"kind\"".to_string())?,
                control: u("control")?,
                data: u("data")?,
            },
            "promote" | "demote" => {
                let step = u("step")?;
                let block = u("block")?;
                let node = node("node")?;
                let rule = v
                    .get("rule")
                    .and_then(Json::as_str)
                    .and_then(Rule::from_label)
                    .ok_or_else(|| "missing or unknown \"rule\"".to_string())?;
                if label == "promote" {
                    Event::Promote {
                        step,
                        block,
                        node,
                        rule,
                    }
                } else {
                    Event::Demote {
                        step,
                        block,
                        node,
                        rule,
                    }
                }
            }
            "invalidation" => Event::Invalidation {
                step: u("step")?,
                block: u("block")?,
                node: node("node")?,
            },
            "nack" | "retry" => {
                let step = u("step")?;
                let block = u("block")?;
                let node = node("node")?;
                let attempt = u32::try_from(u("attempt")?)
                    .map_err(|_| "\"attempt\" out of range".to_string())?;
                if label == "nack" {
                    Event::Nack {
                        step,
                        block,
                        node,
                        attempt,
                    }
                } else {
                    Event::Retry {
                        step,
                        block,
                        node,
                        attempt,
                    }
                }
            }
            "backoff" => Event::Backoff {
                step: u("step")?,
                block: u("block")?,
                node: node("node")?,
                units: u("units")?,
            },
            "checkpoint-saved" => Event::CheckpointSaved {
                step: u("step")?,
                records: u("records")?,
            },
            "checkpoint-loaded" => Event::CheckpointLoaded {
                step: u("step")?,
                records: u("records")?,
            },
            "shard-started" | "shard-finished" => {
                let shard =
                    u32::try_from(u("shard")?).map_err(|_| "\"shard\" out of range".to_string())?;
                let records = u("records")?;
                if label == "shard-started" {
                    Event::ShardStarted { shard, records }
                } else {
                    Event::ShardFinished { shard, records }
                }
            }
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok(ev)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Step {
                step,
                block,
                node,
                kind,
                control,
                data,
            } => write!(
                f,
                "[{step}] {} block={block} node={node} control={control} data={data}",
                kind.label()
            ),
            Event::Promote {
                step,
                block,
                node,
                rule,
            } => write!(
                f,
                "[{step}] promote block={block} node={node} rule={}",
                rule.label()
            ),
            Event::Demote {
                step,
                block,
                node,
                rule,
            } => write!(
                f,
                "[{step}] demote block={block} node={node} rule={}",
                rule.label()
            ),
            Event::Invalidation { step, block, node } => {
                write!(f, "[{step}] invalidation block={block} node={node}")
            }
            Event::Nack {
                step,
                block,
                node,
                attempt,
            } => write!(
                f,
                "[{step}] nack block={block} node={node} attempt={attempt}"
            ),
            Event::Retry {
                step,
                block,
                node,
                attempt,
            } => write!(
                f,
                "[{step}] retry block={block} node={node} attempt={attempt}"
            ),
            Event::Backoff {
                step,
                block,
                node,
                units,
            } => write!(
                f,
                "[{step}] backoff block={block} node={node} units={units}"
            ),
            Event::CheckpointSaved { step, records } => {
                write!(f, "[{step}] checkpoint-saved records={records}")
            }
            Event::CheckpointLoaded { step, records } => {
                write!(f, "[{step}] checkpoint-loaded records={records}")
            }
            Event::ShardStarted { shard, records } => {
                write!(f, "[-] shard-started shard={shard} records={records}")
            }
            Event::ShardFinished { shard, records } => {
                write!(f, "[-] shard-finished shard={shard} records={records}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<Event> {
        vec![
            Event::Step {
                step: 1,
                block: 2,
                node: 3,
                kind: StepKind::ReadMissMigrate,
                control: 2,
                data: 2,
            },
            Event::Promote {
                step: 4,
                block: 5,
                node: 6,
                rule: Rule::WriteHitShared,
            },
            Event::Demote {
                step: 7,
                block: 8,
                node: 9,
                rule: Rule::ReadMiss,
            },
            Event::Invalidation {
                step: 10,
                block: 11,
                node: 12,
            },
            Event::Nack {
                step: 13,
                block: 14,
                node: 15,
                attempt: 1,
            },
            Event::Retry {
                step: 16,
                block: 17,
                node: 18,
                attempt: 2,
            },
            Event::Backoff {
                step: 19,
                block: 20,
                node: 21,
                units: 8,
            },
            Event::CheckpointSaved {
                step: 22,
                records: 1000,
            },
            Event::CheckpointLoaded {
                step: 23,
                records: 1000,
            },
            Event::ShardStarted {
                shard: 2,
                records: 500,
            },
            Event::ShardFinished {
                shard: 2,
                records: 500,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for ev in one_of_each() {
            let line = ev.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "round trip of {line}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for k in StepKind::ALL {
            assert_eq!(StepKind::from_label(k.label()), Some(k));
        }
        for r in Rule::ALL {
            assert_eq!(Rule::from_label(r.label()), Some(r));
        }
        assert_eq!(StepKind::from_label("nope"), None);
        assert_eq!(Rule::from_label("nope"), None);
    }

    #[test]
    fn from_json_rejects_garbage() {
        for bad in [
            "",
            "{}",
            "{\"ev\":\"wat\"}",
            "{\"ev\":\"step\",\"step\":1}",
            "{\"ev\":\"step\",\"step\":1,\"block\":2,\"node\":99999,\"kind\":\"read-hit\",\"control\":0,\"data\":0}",
            "{\"ev\":\"promote\",\"step\":1,\"block\":2,\"node\":3,\"rule\":\"bogus\"}",
        ] {
            assert!(Event::from_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_is_compact_and_single_line() {
        for ev in one_of_each() {
            let text = ev.to_string();
            assert!(!text.contains('\n'));
            assert!(text.contains(ev.label()) || matches!(ev, Event::Step { .. }));
        }
    }
}
