//! The flight recorder: a crash-dump view of the recent event stream.
//!
//! Attach a [`FlightRecorder`] (usually alongside other sinks via
//! `FanoutSink`) and, when a run dies with a `Monitor` violation or a
//! `SimError`, call [`FlightRecorder::report`] with the offending block
//! to render the last-K event dump plus that block's classification
//! timeline — the "what was the protocol doing right before it went
//! wrong" context the aggregate counters cannot provide.

use crate::event::{Event, Rule};
use crate::sink::{EventSink, RingSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One classification flip in a block's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Engine step at which the flip happened.
    pub step: u64,
    /// `true` for a promotion to migratory, `false` for a demotion.
    pub promoted: bool,
    /// The detection rule that triggered the flip.
    pub rule: Rule,
    /// The node whose reference triggered the flip.
    pub node: u16,
}

/// Default number of events the ring retains.
pub const DEFAULT_RING: usize = 256;

/// Per-block cap on retained timeline entries (oldest dropped first).
const TIMELINE_CAP: usize = 64;

/// A bounded ring of recent events plus a per-block classification
/// timeline.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: RingSink,
    timelines: BTreeMap<u64, Vec<TimelineEntry>>,
    /// Flips dropped from timelines that outgrew [`TIMELINE_CAP`].
    trimmed: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: RingSink::new(ring_capacity),
            timelines: BTreeMap::new(),
            trimmed: 0,
        }
    }

    /// Builds a recorder by replaying an already-captured stream.
    pub fn replay<'a>(
        events: impl IntoIterator<Item = &'a Event>,
        ring_capacity: usize,
    ) -> FlightRecorder {
        let mut rec = FlightRecorder::new(ring_capacity);
        for ev in events {
            rec.emit(ev);
        }
        rec
    }

    /// The retained events, oldest first.
    pub fn last_events(&self) -> Vec<Event> {
        self.ring.to_vec()
    }

    /// Total events observed (including those the ring dropped).
    pub fn total_seen(&self) -> u64 {
        self.ring.total_seen()
    }

    /// The classification timeline recorded for `block`.
    pub fn timeline(&self, block: u64) -> &[TimelineEntry] {
        self.timelines.get(&block).map_or(&[], Vec::as_slice)
    }

    /// Renders the crash-dump report: the last-K event dump, then the
    /// classification timeline for `block` (when given).
    pub fn report(&self, block: Option<u64>) -> String {
        let mut out = String::new();
        let events = self.last_events();
        let _ = writeln!(
            out,
            "flight recorder: last {} of {} events",
            events.len(),
            self.total_seen()
        );
        if events.is_empty() {
            out.push_str("  (no events recorded)\n");
        }
        for ev in &events {
            let _ = writeln!(out, "  {ev}");
        }
        if let Some(block) = block {
            let _ = writeln!(out, "classification timeline for block {block}:");
            let timeline = self.timeline(block);
            if timeline.is_empty() {
                out.push_str("  (no classification flips recorded)\n");
            }
            for entry in timeline {
                let _ = writeln!(
                    out,
                    "  [{}] {} node={} rule={}",
                    entry.step,
                    if entry.promoted { "promote" } else { "demote" },
                    entry.node,
                    entry.rule.label()
                );
            }
            if self.trimmed > 0 {
                let _ = writeln!(
                    out,
                    "  ({} older flips trimmed across all blocks)",
                    self.trimmed
                );
            }
        }
        out
    }
}

impl EventSink for FlightRecorder {
    fn emit(&mut self, event: &Event) {
        self.ring.emit(event);
        let entry = match *event {
            Event::Promote {
                step,
                block,
                node,
                rule,
            } => Some((
                block,
                TimelineEntry {
                    step,
                    promoted: true,
                    rule,
                    node,
                },
            )),
            Event::Demote {
                step,
                block,
                node,
                rule,
            } => Some((
                block,
                TimelineEntry {
                    step,
                    promoted: false,
                    rule,
                    node,
                },
            )),
            _ => None,
        };
        if let Some((block, entry)) = entry {
            let timeline = self.timelines.entry(block).or_default();
            if timeline.len() == TIMELINE_CAP {
                timeline.remove(0);
                self.trimmed += 1;
            }
            timeline.push(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StepKind;

    #[test]
    fn records_ring_and_timeline() {
        let mut rec = FlightRecorder::new(4);
        for i in 1..=10u64 {
            rec.emit(&Event::Step {
                step: i,
                block: 7,
                node: 0,
                kind: StepKind::ReadHit,
                control: 0,
                data: 0,
            });
        }
        rec.emit(&Event::Promote {
            step: 11,
            block: 7,
            node: 2,
            rule: Rule::WriteHitShared,
        });
        rec.emit(&Event::Demote {
            step: 12,
            block: 7,
            node: 3,
            rule: Rule::ReadMiss,
        });
        assert_eq!(rec.last_events().len(), 4);
        assert_eq!(rec.total_seen(), 12);
        let timeline = rec.timeline(7);
        assert_eq!(timeline.len(), 2);
        assert!(timeline[0].promoted);
        assert!(!timeline[1].promoted);
        assert!(rec.timeline(99).is_empty());

        let report = rec.report(Some(7));
        assert!(report.contains("flight recorder: last 4 of 12 events"));
        assert!(report.contains("classification timeline for block 7"));
        assert!(report.contains("promote"));
        assert!(report.contains("rule=read-miss"));
    }

    #[test]
    fn timeline_is_bounded() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..200u64 {
            rec.emit(&Event::Promote {
                step: i,
                block: 1,
                node: 0,
                rule: Rule::WriteMiss,
            });
        }
        assert_eq!(rec.timeline(1).len(), TIMELINE_CAP);
        assert_eq!(rec.timeline(1).last().unwrap().step, 199);
        assert!(rec.report(Some(1)).contains("older flips trimmed"));
    }

    #[test]
    fn report_without_block_or_events() {
        let rec = FlightRecorder::new(8);
        let report = rec.report(None);
        assert!(report.contains("(no events recorded)"));
        assert!(!report.contains("classification timeline"));
    }

    #[test]
    fn replay_matches_live() {
        let events = vec![
            Event::Promote {
                step: 1,
                block: 3,
                node: 1,
                rule: Rule::WriteHitCleanExclusive,
            },
            Event::Invalidation {
                step: 2,
                block: 3,
                node: 0,
            },
        ];
        let rec = FlightRecorder::replay(events.iter(), 8);
        assert_eq!(rec.last_events(), events);
        assert_eq!(rec.timeline(3).len(), 1);
    }
}
