//! A minimal, dependency-free JSON value, writer, and parser.
//!
//! The workspace is deliberately free of external crates, so the
//! observability layer carries its own JSON support. It is scoped to
//! what the event trace and metrics registry actually produce: objects,
//! arrays, strings, booleans, null, and *integer* numbers (every metric
//! in the simulator is an integer count; floating point would invite
//! rounding drift into golden comparisons). Numbers are held as `i128`
//! so the full `u64` counter range and negative gauge values both fit
//! exactly.
//!
//! Object key order is preserved (`Vec<(String, Json)>` rather than a
//! map) so a write→parse→write round trip is byte-identical — the CI
//! round-trip check relies on this.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer. Fractional or exponent forms are rejected by the
    /// parser: the simulator never emits them.
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an unsigned counter value.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as i128)
    }

    /// Convenience constructor for a signed gauge value.
    pub fn i64(v: i64) -> Json {
        Json::Num(v as i128)
    }

    /// The value as a `u64` counter, if it is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` gauge, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object slice, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document, rejecting trailing bytes.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after JSON value"));
        }
        Ok(value)
    }
}

/// Serializes to compact JSON (no whitespace); `to_string()` uses this.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth bound; hostile input cannot blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("non-integer numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 3; // the final += 1 below consumes the 4th digit
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_documents() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[{\"c\":\"d\"}]}",
        ];
        for case in cases {
            let v = Json::parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            assert_eq!(v.to_string(), case, "round trip of {case}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "1.5",
            "1e3",
            "\"unterminated",
            "nul",
            "[1]x",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn preserves_key_order() {
        let text = "{\"z\":1,\"a\":2,\"m\":3}";
        assert_eq!(Json::parse(text).unwrap().to_string(), text);
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"g\":-2}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("g").and_then(Json::as_i64), Some(-2));
        assert_eq!(v.get("g").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
