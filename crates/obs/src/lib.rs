//! Observability for the coherence simulators: structured protocol
//! event tracing, a metrics registry, and a flight recorder.
//!
//! The simulators' aggregate counters answer *how much* traffic a
//! protocol generated; this crate answers *when and why*. Engines emit
//! a stream of compact [`Event`] values — reference steps with their
//! message charges, migratory promotions/demotions tagged with the
//! paper's detection rule, invalidations, fault NACK/retry/backoff,
//! checkpoint saves/loads, and shard framing — through a pluggable
//! [`EventSink`]:
//!
//! * [`NullSink`] — the default "not attached" behavior; engines hold
//!   `Option<SharedSink>` and the `None` path is a single branch, so
//!   un-instrumented runs stay bit-exact with the pre-observability
//!   code.
//! * [`RingSink`] — a bounded ring of the most recent events.
//! * [`BufferSink`] — the full stream, for post-run export/merging.
//! * [`JsonlSink`] — streams JSON Lines to a file.
//! * [`MetricsRecorder`] — aggregates into a [`Registry`] of named
//!   counters, gauges, and log2 histograms with per-N-records interval
//!   snapshots.
//! * [`FlightRecorder`] — ring + per-block classification timelines,
//!   rendered into error context when a run dies.
//!
//! Events are observations derived from state the engines already
//! compute; no decision in any engine reads a sink, so observability
//! can never perturb simulation results.
//!
//! The crate is dependency-light by design (only `mcc-stats`, itself
//! dependency-free) and carries its own minimal [`json`] module, since
//! the workspace builds fully offline with no external crates.

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{Event, Rule, StepKind};
pub use json::{Json, JsonError};
pub use metrics::{IntervalSnapshot, Log2Histogram, MetricsRecorder, Registry, DEFAULT_INTERVAL};
pub use recorder::{FlightRecorder, TimelineEntry, DEFAULT_RING};
pub use sink::{
    lock_sink, shared, BufferSink, EventSink, FanoutSink, JsonlSink, NullSink, RingSink, SharedSink,
};
