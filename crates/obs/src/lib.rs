//! Observability for the coherence simulators: structured protocol
//! event tracing, a metrics registry, and a flight recorder.
//!
//! The simulators' aggregate counters answer *how much* traffic a
//! protocol generated; this crate answers *when and why*. Engines emit
//! a stream of compact [`Event`] values — reference steps with their
//! message charges, migratory promotions/demotions tagged with the
//! paper's detection rule, invalidations, fault NACK/retry/backoff,
//! checkpoint saves/loads, and shard framing — through a pluggable
//! [`EventSink`]:
//!
//! * [`NullSink`] — the default "not attached" behavior; engines hold
//!   `Option<SharedSink>` and the `None` path is a single branch, so
//!   un-instrumented runs stay bit-exact with the pre-observability
//!   code.
//! * [`RingSink`] — a bounded ring of the most recent events.
//! * [`BufferSink`] — the full stream, for post-run export/merging.
//! * [`JsonlSink`] — streams JSON Lines to a file.
//! * [`MetricsRecorder`] — aggregates into a [`Registry`] of named
//!   counters, gauges, and log2 histograms with per-N-records interval
//!   snapshots.
//! * [`FlightRecorder`] — ring + per-block classification timelines,
//!   rendered into error context when a run dies.
//! * [`TelemetrySink`] — batched local aggregation published into a
//!   shared, lock-free [`Telemetry`] plane that a hand-rolled HTTP
//!   endpoint ([`TelemetryServer`]) exposes as Prometheus text and
//!   JSON snapshots while a run is still in flight, alongside a
//!   periodic [`SnapshotWriter`] JSONL stream.
//!
//! The [`span`] module adds causal spans on top of the event stream:
//! per-request [`SpanId`]s minted at ingress and carried through wire,
//! shard, and WAL, with per-[`Stage`] latencies accumulated into
//! lock-free [`AtomicHistogram`]s. Wall-clock reads live strictly at
//! stage boundaries in the service layer — never inside deterministic
//! replay or simulation paths.
//!
//! Events are observations derived from state the engines already
//! compute; no decision in any engine reads a sink, so observability
//! can never perturb simulation results.
//!
//! The crate is dependency-light by design (only `mcc-stats`, itself
//! dependency-free) and carries its own minimal [`json`] module, since
//! the workspace builds fully offline with no external crates.

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod span;
pub mod telemetry;

pub use event::{Event, Rule, StepKind};
pub use json::{Json, JsonError};
pub use metrics::{IntervalSnapshot, Log2Histogram, MetricsRecorder, Registry, DEFAULT_INTERVAL};
pub use recorder::{FlightRecorder, TimelineEntry, DEFAULT_RING};
pub use sink::{
    lock_sink, shared, BufferSink, EventSink, FanoutSink, JsonlSink, NullSink, RingSink, SharedSink,
};
pub use span::{AtomicHistogram, SpanId, Stage};
pub use telemetry::{
    http_get, prometheus_name, SnapshotWriter, Telemetry, TelemetryServer, TelemetrySink,
    DEFAULT_PUBLISH_EVERY,
};
