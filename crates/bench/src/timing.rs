//! Minimal self-timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the benches use a plain
//! [`std::time::Instant`] loop instead of an external benchmarking
//! framework: a fixed warm-up, a fixed sample count, and a median-based
//! report. Absolute numbers are machine-dependent; the value of these
//! benches is catching order-of-magnitude regressions and providing a
//! reproducible `cargo bench` entry point.

use std::time::Instant;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;

/// Runs `f` once as warm-up and `SAMPLES` timed times, then prints a
/// `name  median  min  [per-element]` line. `elements` scales the
/// per-iteration cost into a throughput figure when non-zero.
pub fn bench<T>(name: &str, elements: u64, mut f: impl FnMut() -> T) {
    let _warmup = f();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let _keep = f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    if elements > 0 {
        let throughput = elements as f64 / median;
        println!(
            "{name:<40} median {:>10} min {:>10}  {:>14.0} elem/s",
            format_secs(median),
            format_secs(min),
            throughput
        );
    } else {
        println!(
            "{name:<40} median {:>10} min {:>10}",
            format_secs(median),
            format_secs(min)
        );
    }
}

/// Runs `f` once as warm-up and `samples` timed times, returning the
/// median wall time in seconds. The programmatic sibling of [`bench`]
/// for harness binaries that post-process timings (speedup tables)
/// instead of printing them directly.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(samples > 0, "sample count must be positive");
    let _warmup = f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _keep = f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_samples_plus_warmup() {
        let mut calls = 0u32;
        bench("counter", 0, || calls += 1);
        assert_eq!(calls, 1 + SAMPLES as u32);
    }

    #[test]
    fn measure_runs_closure_samples_plus_warmup() {
        let mut calls = 0u32;
        let median = measure(5, || calls += 1);
        assert_eq!(calls, 6);
        assert!(median >= 0.0);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn measure_rejects_zero_samples() {
        let _ = measure(0, || ());
    }

    #[test]
    fn format_covers_all_scales() {
        assert!(format_secs(5e-9).ends_with("ns"));
        assert!(format_secs(5e-6).ends_with("µs"));
        assert!(format_secs(5e-3).ends_with("ms"));
        assert!(format_secs(5.0).ends_with('s'));
    }
}
