//! Minimal self-timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the benches use a plain
//! [`std::time::Instant`] loop instead of an external benchmarking
//! framework: a fixed warm-up, a fixed sample count, and a median-based
//! report. Absolute numbers are machine-dependent; the value of these
//! benches is catching order-of-magnitude regressions and providing a
//! reproducible `cargo bench` entry point.

use std::time::Instant;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;

/// Runs `f` once as warm-up and `SAMPLES` timed times, then prints a
/// `name  median  min  [per-element]` line. `elements` scales the
/// per-iteration cost into a throughput figure when non-zero.
pub fn bench<T>(name: &str, elements: u64, mut f: impl FnMut() -> T) {
    let _warmup = f();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let _keep = f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    if elements > 0 {
        let throughput = elements as f64 / median;
        println!(
            "{name:<40} median {:>10} min {:>10}  {:>14.0} elem/s",
            format_secs(median),
            format_secs(min),
            throughput
        );
    } else {
        println!(
            "{name:<40} median {:>10} min {:>10}",
            format_secs(median),
            format_secs(min)
        );
    }
}

/// Runs `f` once as warm-up and `samples` timed times, returning the
/// median wall time in seconds. The programmatic sibling of [`bench`]
/// for harness binaries that post-process timings (speedup tables)
/// instead of printing them directly.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure<T>(samples: usize, f: impl FnMut() -> T) -> f64 {
    measure_detailed(samples, f).wall_median
}

/// The full result of a [`measure_detailed`] run.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Median wall time per iteration, in seconds — a typical
    /// iteration on this host, as a user would experience it.
    pub wall_median: f64,
    /// Minimum wall time per iteration, in seconds.
    pub wall_min: f64,
}

/// Like [`measure`], but reports both the median and the minimum wall
/// time per iteration.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure_detailed<T>(samples: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(samples > 0, "sample count must be positive");
    let _warmup = f();
    let mut walls: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _keep = f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Timing {
        wall_median: walls[walls.len() / 2],
        wall_min: walls[0],
    }
}

/// Repeats `f` until the calling thread has accumulated at least
/// `min_cpu_secs` of on-CPU time, then returns the mean *CPU* seconds
/// per iteration. `None` where the platform doesn't expose thread CPU
/// time, or if the accounting doesn't advance.
///
/// CPU time is the robust basis for cross-run perf comparisons:
/// preemption, cgroup throttling, and noisy neighbors stretch wall
/// time by integer factors while barely moving on-CPU time. The
/// scheduler only refreshes the accounting at tick granularity
/// (typically 1–4 ms), hence the block structure — `min_cpu_secs`
/// should span dozens of ticks (≥ 0.1 s) for a ≲5% reading.
pub fn measure_cpu_block<T>(min_cpu_secs: f64, mut f: impl FnMut() -> T) -> Option<f64> {
    let _warmup = f();
    let start = thread_cpu_secs()?;
    let wall = Instant::now();
    let mut iters = 0u64;
    loop {
        let _keep = f();
        iters += 1;
        let delta = thread_cpu_secs()? - start;
        if delta >= min_cpu_secs && iters >= 2 {
            return Some(delta / iters as f64);
        }
        // Runaway guard: if CPU accounting stalls (or one iteration is
        // enormous), stop on wall time and salvage what advanced.
        if wall.elapsed().as_secs_f64() > 10.0 {
            return (delta > 0.0).then(|| delta / iters as f64);
        }
    }
}

/// Cumulative on-CPU time of the calling thread, in seconds, from the
/// Linux scheduler's nanosecond accounting (`schedstat` field 1).
/// `None` where `/proc` is absent or unreadable.
pub fn thread_cpu_secs() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat")
        .or_else(|_| std::fs::read_to_string("/proc/self/schedstat"))
        .ok()?;
    let ns: u64 = text.split_whitespace().next()?.parse().ok()?;
    Some(ns as f64 / 1e9)
}

fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_samples_plus_warmup() {
        let mut calls = 0u32;
        bench("counter", 0, || calls += 1);
        assert_eq!(calls, 1 + SAMPLES as u32);
    }

    #[test]
    fn measure_runs_closure_samples_plus_warmup() {
        let mut calls = 0u32;
        let median = measure(5, || calls += 1);
        assert_eq!(calls, 6);
        assert!(median >= 0.0);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn measure_rejects_zero_samples() {
        let _ = measure(0, || ());
    }

    #[test]
    fn measure_detailed_orders_min_under_median() {
        let mut calls = 0u32;
        let t = measure_detailed(9, || calls += 1);
        assert_eq!(calls, 10);
        assert!(t.wall_min <= t.wall_median);
    }

    #[test]
    fn measure_cpu_block_reports_per_iteration_cpu() {
        let Some(_) = thread_cpu_secs() else {
            return; // platform without /proc: nothing to assert
        };
        let spin = || {
            let mut acc = 1u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc)
        };
        let per_iter = measure_cpu_block(0.02, spin).expect("cpu accounting advances");
        assert!(per_iter > 0.0);
        assert!(per_iter < 10.0);
    }

    #[test]
    fn thread_cpu_secs_advances_under_load() {
        let Some(before) = thread_cpu_secs() else {
            return; // platform without /proc: nothing to assert
        };
        // Burn a visible amount of CPU (spin, not sleep).
        let mut acc = 0u64;
        while thread_cpu_secs().is_some_and(|now| now - before < 0.01) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(acc);
        }
        let after = thread_cpu_secs().expect("was Some above");
        assert!(after > before);
    }

    #[test]
    fn format_covers_all_scales() {
        assert!(format_secs(5e-9).ends_with("ns"));
        assert!(format_secs(5e-6).ends_with("µs"));
        assert!(format_secs(5e-3).ends_with("ms"));
        assert!(format_secs(5.0).ends_with('s'));
    }
}
