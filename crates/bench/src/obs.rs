//! Observability wiring for the run router.
//!
//! When a binary asks for `--events-out`, `--metrics-out`, or
//! `--events-ring`, the router takes this module's path instead of the
//! plain one: it builds one sink per shard (sharded engines must never
//! contend on a single sink), runs the simulation through the
//! `*_with_sinks` entry points, merges the captured streams in shard
//! index order, and writes the requested artifacts. On failure it
//! additionally renders the flight recorder — the last-K events plus
//! the offending block's classification timeline — onto stderr, so a
//! dead run leaves behind the "what was the protocol doing" context the
//! aggregate counters cannot provide.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mcc_core::{DirectorySim, SimError, SimResult};
use mcc_obs::{
    lock_sink, shared, BufferSink, Event, FlightRecorder, MetricsRecorder, RingSink, SharedSink,
    DEFAULT_INTERVAL, DEFAULT_RING,
};
use mcc_trace::Trace;

use crate::experiments::RunOptions;

/// Observability outputs requested for a run. All fields default to
/// "off"; the router only takes the instrumented path when
/// [`ObsOptions::is_active`] is true, so un-instrumented runs stay on
/// the exact pre-observability code path.
#[derive(Clone, Debug, Default)]
pub struct ObsOptions {
    /// Write the merged event stream here as JSON Lines.
    pub events_out: Option<PathBuf>,
    /// Write the metrics registry here as JSON.
    pub metrics_out: Option<PathBuf>,
    /// Retain only the last K events per shard (flight-recorder mode;
    /// 0 means "not requested" — a full buffer is kept if another
    /// output needs it, or [`DEFAULT_RING`] is used for crash dumps).
    pub events_ring: usize,
}

impl ObsOptions {
    /// Whether any observability output was requested.
    pub fn is_active(&self) -> bool {
        self.events_out.is_some() || self.metrics_out.is_some() || self.events_ring > 0
    }

    /// The flight-recorder ring capacity: the requested size, or
    /// [`DEFAULT_RING`] when none was given.
    pub fn ring_capacity(&self) -> usize {
        if self.events_ring == 0 {
            DEFAULT_RING
        } else {
            self.events_ring
        }
    }

    /// Whether the full event stream must be retained (a file export
    /// or metrics replay needs every event; a ring-only request does
    /// not).
    fn wants_full_stream(&self) -> bool {
        self.events_out.is_some() || self.metrics_out.is_some()
    }
}

/// Per-shard sink set: full buffers when an export needs every event,
/// bounded rings when only a crash dump was requested.
struct Capture {
    full: Vec<Arc<Mutex<BufferSink>>>,
    rings: Vec<Arc<Mutex<RingSink>>>,
    handles: Vec<SharedSink>,
}

impl Capture {
    fn new(obs: &ObsOptions, shards: usize) -> Capture {
        let mut cap = Capture {
            full: Vec::new(),
            rings: Vec::new(),
            handles: Vec::new(),
        };
        for _ in 0..shards {
            if obs.wants_full_stream() {
                let (sink, handle) = shared(BufferSink::new());
                cap.full.push(sink);
                cap.handles.push(handle);
            } else {
                let (sink, handle) = shared(RingSink::new(obs.ring_capacity()));
                cap.rings.push(sink);
                cap.handles.push(handle);
            }
        }
        cap
    }

    /// The captured events, concatenated in shard index order — the
    /// canonical merge order for sharded streams (shard 0's events,
    /// then shard 1's, …), which per-shard determinism makes stable
    /// across thread schedules.
    fn merged(&self) -> Vec<Event> {
        let mut events = Vec::new();
        for sink in &self.full {
            events.extend_from_slice(lock_sink(sink).events());
        }
        for sink in &self.rings {
            events.extend(lock_sink(sink).events().copied());
        }
        events
    }
}

/// The instrumented router path: mirrors `try_run_protocol`'s
/// resume/checkpoint/sharded/sequential routing but runs every leg
/// through the `*_with_sinks` entry points, then writes the requested
/// artifacts and renders the flight recorder if the run died.
pub(crate) fn run_observed(
    sim: &DirectorySim,
    trace: &Trace,
    shards: usize,
    opts: &RunOptions,
) -> Result<(SimResult, Option<mcc_core::SnapshotGeneration>), SimError> {
    let obs = &opts.obs;
    if let Some(path) = &opts.resume {
        let (checkpoint, generation) = crate::experiments::load_resume_checkpoint(path)?;
        // A resumed run replays the snapshot's own shard layout, so the
        // sink count must match the snapshot, not the --shards flag.
        let capture = Capture::new(obs, checkpoint.shard_count());
        let outcome = sim.resume_from_with_sinks(
            trace,
            &checkpoint,
            opts.checkpoint.as_ref(),
            &capture.handles,
        );
        return finish(obs, &capture, outcome).map(|r| (r, Some(generation)));
    }
    let capture = Capture::new(obs, shards);
    let outcome = if let Some(policy) = &opts.checkpoint {
        sim.run_resumable_with_sinks(trace, shards, policy, &capture.handles)
    } else if shards > 1 {
        sim.try_run_sharded_with_sinks(trace, shards, &capture.handles)
    } else {
        sim.try_run_with_sink(trace, capture.handles[0].clone())
    };
    finish(obs, &capture, outcome).map(|r| (r, None))
}

/// Writes the requested artifacts from the captured stream (on success
/// *and* failure — a partial stream from a dead run is exactly what a
/// post-mortem wants), renders the flight recorder when the run died,
/// and passes the outcome through.
fn finish(
    obs: &ObsOptions,
    capture: &Capture,
    outcome: Result<SimResult, SimError>,
) -> Result<SimResult, SimError> {
    let events = capture.merged();
    if let Some(path) = &obs.events_out {
        if let Err(e) = write_events_jsonl(path, &events) {
            eprintln!("mcc-bench: writing {}: {e}", path.display());
        }
    }
    if let Some(path) = &obs.metrics_out {
        let registry = MetricsRecorder::replay(events.iter(), DEFAULT_INTERVAL);
        if let Err(e) = std::fs::write(path, registry.to_json()) {
            eprintln!("mcc-bench: writing {}: {e}", path.display());
        }
    }
    if let Err(e) = &outcome {
        eprint!("{}", flight_dump(&events, obs.ring_capacity(), e));
    }
    outcome
}

/// Renders the crash-dump context for a failed run: the error, then the
/// last-K event dump and — when the error names a block — that block's
/// classification timeline.
pub fn flight_dump(events: &[Event], ring_capacity: usize, error: &SimError) -> String {
    let recorder = FlightRecorder::replay(events.iter(), ring_capacity);
    format!(
        "mcc-bench: run failed: {error}\n{}",
        recorder.report(error.block().map(|b| b.index()))
    )
}

/// Writes an event stream as JSON Lines (one [`Event::to_json`] object
/// per line).
pub fn write_events_jsonl(path: &Path, events: &[Event]) -> std::io::Result<()> {
    use std::io::Write as _;
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    for event in events {
        writeln!(out, "{}", event.to_json())?;
    }
    out.flush()
}
