//! `mcc-top` — a refreshing terminal dashboard over a live telemetry
//! plane.
//!
//! Polls either the embedded HTTP endpoint (`--url`, the `/json`
//! snapshot route) or a growing `*.telemetry.jsonl` snapshot file
//! (`--file`, always the last line), and renders per-shard progress,
//! stage latency quantiles, chaos/NACK/retry rates, and WAL health,
//! redrawing in place every `--interval-ms`. Rates are computed
//! client-side from consecutive snapshots, so the run being watched
//! pays nothing for them.
//!
//! Zero dependencies: the "UI" is ANSI clear-screen plus aligned
//! text, the HTTP client is `mcc_obs::http_get`, and the snapshot
//! parser is the workspace's own JSON.

use std::process::exit;
use std::time::Duration;

use mcc_obs::{http_get, Json, Registry, Stage};

const BIN: &str = "mcc-top";

struct Args {
    url: Option<String>,
    file: Option<String>,
    interval: Duration,
    once: bool,
}

/// One decoded snapshot line: envelope + registry.
struct Snapshot {
    ts_ms: u64,
    seq: u64,
    uptime_ms: u64,
    registry: Registry,
}

fn decode_snapshot(line: &str) -> Result<Snapshot, String> {
    let v = Json::parse(line.trim()).map_err(|e| format!("bad snapshot JSON: {e}"))?;
    let u = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("missing {k}"))
    };
    let registry = v
        .get("registry")
        .ok_or("missing registry")
        .map(Json::to_string)?;
    Ok(Snapshot {
        ts_ms: u("ts_ms")?,
        seq: u("seq")?,
        uptime_ms: u("uptime_ms")?,
        registry: Registry::from_json(&registry)?,
    })
}

/// Fetches the freshest snapshot from whichever source was configured.
fn fetch(args: &Args) -> Result<Snapshot, String> {
    if let Some(url) = &args.url {
        let body = http_get(url, "/json").map_err(|e| format!("{url}: {e}"))?;
        return decode_snapshot(&body);
    }
    let path = args.file.as_deref().expect("one source is configured");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let last = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path}: no snapshot lines yet"))?;
    decode_snapshot(last)
}

fn counter(r: &Registry, name: &str) -> u64 {
    r.counter(name)
}

fn gauge(r: &Registry, name: &str) -> i64 {
    r.gauge(name)
}

/// Per-second rate of a counter between two snapshots (0 on the first
/// frame or when the clock did not advance).
fn rate(prev: Option<&Snapshot>, now: &Snapshot, name: &str) -> f64 {
    let Some(prev) = prev else { return 0.0 };
    let dt_ms = now.ts_ms.saturating_sub(prev.ts_ms);
    if dt_ms == 0 {
        return 0.0;
    }
    let delta = counter(&now.registry, name).saturating_sub(counter(&prev.registry, name));
    delta as f64 * 1000.0 / dt_ms as f64
}

fn fmt_us(us: u64) -> String {
    if us == u64::MAX {
        ">64s".into()
    } else if us >= 1_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn render(prev: Option<&Snapshot>, now: &Snapshot, clear: bool) {
    let r = &now.registry;
    let mut out = String::new();
    if clear {
        // ANSI: home + clear-to-end, so the frame redraws in place.
        out.push_str("\x1b[H\x1b[2J");
    }
    out.push_str(&format!(
        "mcc-top — snapshot #{} at +{:.1}s\n\n",
        now.seq,
        now.uptime_ms as f64 / 1e3
    ));

    // Throughput and client-observed health — only for planes that
    // actually carry the live-service vocabulary (a sweep supervisor's
    // plane has none of it).
    let has_live = r.counters().contains_key("live.ops_acked");
    if has_live {
        render_live(prev, now, &mut out);
    }

    // Per-shard health, discovered from the registry's name space.
    let mut shard_lines = Vec::new();
    for i in 0.. {
        let name = format!("shard.{i}.applied");
        if !r.counters().contains_key(&name) {
            break;
        }
        shard_lines.push(format!(
            "shard {i:<3} applied {:>10} ({:>8.0}/s) queue {:>5} backlog {:>5} lag {:>5} \
             restarts {}\n",
            counter(r, &name),
            rate(prev, now, &name),
            gauge(r, &format!("shard.{i}.queue_depth")),
            gauge(r, &format!("shard.{i}.wal_backlog")),
            gauge(r, &format!("shard.{i}.lag")),
            counter(r, &format!("shard.{i}.restarts")),
        ));
    }
    if !shard_lines.is_empty() {
        out.push('\n');
        for l in shard_lines {
            out.push_str(&l);
        }
    }

    // Sweep-supervisor planes have their own vocabulary.
    let sweep_total = gauge(r, "sweep.cells_total");
    if sweep_total > 0 {
        out.push_str(&format!(
            "\nsweep    cell {:>3}/{} complete {:>3} failed {:>3} skipped {:>3}\n",
            gauge(r, "sweep.cell_index"),
            sweep_total,
            counter(r, "sweep.cells_completed"),
            counter(r, "sweep.cells_failed"),
            counter(r, "sweep.cells_skipped"),
        ));
    }
    print!("{out}");
}

/// The live-service sections: throughput, faults, chaos, WAL, stages.
fn render_live(prev: Option<&Snapshot>, now: &Snapshot, out: &mut String) {
    let r = &now.registry;
    out.push_str(&format!(
        "ops      {:>12} acked   {:>10.0} ops/s   applied {:>12}\n",
        counter(r, "live.ops_acked"),
        rate(prev, now, "live.ops_acked"),
        counter(r, "live.applied"),
    ));
    out.push_str(&format!(
        "faults   {:>12} retries {:>10.1} retry/s nacks {:>8} timeouts {:>8}\n",
        counter(r, "live.retries"),
        rate(prev, now, "live.retries"),
        counter(r, "live.nacks"),
        counter(r, "live.timeouts"),
    ));
    out.push_str(&format!(
        "chaos    req sent {:>10} dropped {:>8} delayed {:>8} duplicated {:>8}\n",
        counter(r, "live.chaos.req.sent"),
        counter(r, "live.chaos.req.dropped"),
        counter(r, "live.chaos.req.delayed"),
        counter(r, "live.chaos.req.duplicated"),
    ));
    out.push_str(&format!(
        "         rep sent {:>10} dropped {:>8} delayed {:>8} duplicated {:>8}\n",
        counter(r, "live.chaos.rep.sent"),
        counter(r, "live.chaos.rep.dropped"),
        counter(r, "live.chaos.rep.delayed"),
        counter(r, "live.chaos.rep.duplicated"),
    ));
    let wal_appends = counter(r, "live.wal.appends");
    if wal_appends > 0 || counter(r, "live.wal.reconciled") > 0 {
        out.push_str(&format!(
            "wal      appends {:>10} ({:>8.0}/s) torn {:>4} reconciled {:>6} prev-snap {:>4}\n",
            wal_appends,
            rate(prev, now, "live.wal.appends"),
            counter(r, "live.wal.torn_tails"),
            counter(r, "live.wal.reconciled"),
            counter(r, "live.wal.prev_snapshot_loads"),
        ));
    }

    // Stage latency quantiles.
    out.push_str("\nstage        count        p50        p99\n");
    for stage in Stage::ALL {
        if let Some(h) = r.histogram(&stage.metric_name()) {
            if h.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>7} {:>10} {:>10}\n",
                stage.label(),
                h.count(),
                fmt_us(h.quantile_upper_bound(0.5).unwrap_or(0)),
                fmt_us(h.quantile_upper_bound(0.99).unwrap_or(0)),
            ));
        }
    }
}

fn main() {
    let args = parse_args();
    let mut prev: Option<Snapshot> = None;
    let mut failures = 0u32;
    loop {
        match fetch(&args) {
            Ok(now) => {
                failures = 0;
                // A restarted run resets seq; drop the stale baseline
                // instead of reporting negative-delta nonsense rates.
                let baseline = prev.take().filter(|p| p.seq < now.seq);
                render(baseline.as_ref(), &now, !args.once);
                prev = Some(now);
            }
            Err(e) => {
                failures += 1;
                eprintln!("{BIN}: {e}");
                // An endpoint that stays gone means the run ended.
                if failures >= 5 {
                    exit(1);
                }
            }
        }
        if args.once {
            exit(i32::from(failures > 0));
        }
        std::thread::sleep(args.interval);
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        url: None,
        file: None,
        interval: Duration::from_millis(1000),
        once: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--url" => args.url = Some(value("--url")),
            "--file" => args.file = Some(value("--file")),
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms").parse().unwrap_or_else(|_| {
                    eprintln!("{BIN}: --interval-ms: bad value");
                    exit(2);
                });
                args.interval = Duration::from_millis(ms.max(50));
            }
            "--once" => args.once = true,
            "--help" | "-h" => {
                println!(
                    "{BIN} — terminal dashboard over a live telemetry plane\n\n\
                     Usage: {BIN} (--url HOST:PORT | --file PATH.telemetry.jsonl) \
                     [--interval-ms N] [--once]\n\
                     \n  --url HOST:PORT   poll a live /json endpoint (from live --telemetry\
                     \n                    or supervisor --telemetry)\
                     \n  --file PATH       tail a *.telemetry.jsonl snapshot file instead\
                     \n  --interval-ms N   refresh cadence (default 1000, min 50)\
                     \n  --once            render one frame without clearing and exit\n\
                     \nShows ops/sec, per-stage p50/p99, chaos/NACK/retry rates, WAL health,\
                     \nper-shard queue depth / backlog / lag, and sweep cell progress."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    if args.url.is_some() == args.file.is_some() {
        eprintln!("{BIN}: exactly one of --url or --file is required (try --help)");
        exit(2);
    }
    args
}
