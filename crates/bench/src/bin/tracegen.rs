//! Dumps a synthetic workload trace to a file in the MCCT binary format,
//! for use by external tools or for archiving an experiment's input.
//!
//! Usage: `tracegen <workload> <output.mcct> [--nodes N] [--scale X] [--seed N]`

use std::process::exit;

use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: tracegen <cholesky|locus|mp3d|pthor|water> <output.mcct> [--nodes N] [--scale X] [--seed N]");
        exit(2);
    }
    let workload: Workload = args[0].parse().unwrap_or_else(|e| {
        eprintln!("tracegen: {e}");
        exit(2);
    });
    let path = &args[1];
    let mut params = WorkloadParams::new(16);
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        let value = rest.next().unwrap_or_else(|| {
            eprintln!("tracegen: {flag} needs a value");
            exit(2);
        });
        match flag.as_str() {
            "--nodes" => params.nodes = value.parse().expect("node count"),
            "--scale" => params = params.scale(value.parse().expect("scale")),
            "--seed" => params = params.seed(value.parse().expect("seed")),
            other => {
                eprintln!("tracegen: unknown flag {other}");
                exit(2);
            }
        }
    }

    let trace = workload.generate(&params);
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("tracegen: cannot create {path}: {e}");
        exit(1);
    });
    let mut writer = std::io::BufWriter::new(file);
    trace.write_to(&mut writer).unwrap_or_else(|e| {
        eprintln!("tracegen: write failed: {e}");
        exit(1);
    });
    println!("{workload}: wrote {} references to {path}", trace.len());
    println!("{}", trace.stats());
}
