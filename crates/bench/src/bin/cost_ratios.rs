//! §4.1 cost-ratio study: how the aggressive protocol's advantage
//! shrinks as data-carrying messages are charged 2x, 4x, or by size.

use mcc_bench::{cost_ratio_table, Scenario};

fn main() {
    let scenario = Scenario::from_env("cost_ratios", "§4.1 message cost-ratio study");
    let table = cost_ratio_table(&scenario);
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Paper: at 1 MB caches MP3D falls 48% → 38% → 27% and Locus Route\n\
             14% → 10% → 6.4% as the data:control ratio goes 1:1 → 2:1 → 4:1;\n\
             under the per-16-byte model 256-byte blocks save almost nothing."
        );
    }
}
