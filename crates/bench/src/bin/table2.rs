//! Regenerates Table 2 of the paper: message counts by per-node cache
//! size, application, and protocol, with 16-byte blocks, finite 4-way
//! LRU caches, and profiled static page placement.

use mcc_bench::{cache_size_sweep, render_message_rows, Scenario, CACHE_SIZES_KB};

fn main() {
    let scenario = Scenario::from_env("table2", "Table 2: message counts by cache size");
    println!(
        "Table 2 — message counts (thousands) by cache size; 16-byte blocks; \
         {} nodes, scale {}, seed {}\n",
        scenario.nodes, scenario.scale, scenario.seed
    );
    for kb in CACHE_SIZES_KB {
        let rows = cache_size_sweep(kb, &scenario);
        let table = render_message_rows(&format!("{kb} Kbyte caches"), &rows);
        if scenario.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
