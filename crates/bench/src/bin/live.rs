//! Runs the protocol as a live concurrent service and reports
//! sustained throughput, request-latency quantiles, and retry/NACK
//! rates under configurable wire chaos.
//!
//! One thread per directory shard, one per node-cache client, real
//! `mpsc` channels, faults injected on the wire (`--chaos`, or the
//! per-fault `--*-ppm` flags). The run is self-verifying: every shard
//! journal replays through `mcc-check`'s lockstep
//! engine/specification checker, and the process exits non-zero if
//! the run degraded (client errors, dead shards) or verification
//! found any violation — which makes `--soak-secs N` a chaos-soak
//! gate: survive N seconds at the configured fault rates with zero
//! deadlocks, zero lost writes, and zero rule violations, or fail.
//!
//! With `--out BASE` the run also writes `BASE.live.kv`,
//! `BASE.shard-<i>.mcct`, and `BASE.shard-<i>.events.jsonl`, which
//! `obs_report --live BASE` re-validates offline.

use std::path::PathBuf;
use std::process::exit;
use std::str::FromStr;
use std::time::Duration;

use mcc_check::parse_protocol;
use mcc_core::{FaultPlan, FaultRates};
use mcc_live::{run_live, KillSpec, LiveConfig, TelemetrySpec, WalConfig};
use mcc_obs::Log2Histogram;
use mcc_workloads::Workload;

const BIN: &str = "live";

fn main() {
    let (cfg, out) = parse_args();

    let report = match run_live(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{BIN}: bad configuration: {e}");
            exit(2);
        }
    };

    print!("{}", mcc_live::summary_kv(&report, &cfg));
    print_latency(&report.latency_us());

    if let Some(base) = out {
        match mcc_live::write_artifacts(&report, &cfg, &base) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("{BIN}: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("{BIN}: writing artifacts under {}: {e}", base.display());
                exit(1);
            }
        }
    }

    if !report.ok() {
        for (node, err) in report.client_errors() {
            eprintln!("{BIN}: client {node}: {err}");
        }
        for shard in report.failed_shards() {
            eprintln!("{BIN}: shard {shard} failed");
        }
        for v in &report.verify.violations {
            eprintln!("{BIN}: verification: {v}");
        }
        exit(1);
    }
}

/// Prints the merged latency histogram's populated buckets.
fn print_latency(latency: &Log2Histogram) {
    if latency.count() == 0 {
        return;
    }
    eprintln!("request latency (us):");
    let last = latency.max_bucket().unwrap_or(0);
    for (i, &count) in latency.buckets().iter().enumerate().take(last + 1) {
        if count > 0 {
            eprintln!("  {:>12} {count}", Log2Histogram::bucket_label(i));
        }
    }
}

fn parse_args() -> (LiveConfig, Option<PathBuf>) {
    let mut cfg = LiveConfig::new(mcc_core::Protocol::Basic, 8, 4);
    cfg.max_refs_per_client = 50_000;
    let mut drop_ppm = 0u32;
    let mut nack_ppm = 0u32;
    let mut delay_ppm = 0u32;
    let mut duplicate_ppm = 0u32;
    let mut max_retries = 64u32;
    let mut out = None;
    let mut telemetry_addr: Option<String> = None;
    let mut telemetry_every_ms = 250u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--protocol" => {
                cfg.protocol = parse_protocol(&value("--protocol")).unwrap_or_else(|e| {
                    eprintln!("{BIN}: {e}");
                    exit(2);
                })
            }
            "--workload" => {
                cfg.workload = Workload::from_str(&value("--workload")).unwrap_or_else(|e| {
                    eprintln!("{BIN}: {e}");
                    exit(2);
                })
            }
            "--nodes" => cfg.nodes = parse(&value("--nodes"), "--nodes"),
            "--shards" => cfg.shards = parse(&value("--shards"), "--shards"),
            "--scale" => cfg.scale = parse(&value("--scale"), "--scale"),
            "--seed" => cfg.seed = parse(&value("--seed"), "--seed"),
            "--chaos" => {
                let ppm: u32 = parse(&value("--chaos"), "--chaos");
                drop_ppm = ppm;
                nack_ppm = ppm;
                delay_ppm = ppm;
                duplicate_ppm = ppm;
            }
            "--drop-ppm" => drop_ppm = parse(&value("--drop-ppm"), "--drop-ppm"),
            "--nack-ppm" => nack_ppm = parse(&value("--nack-ppm"), "--nack-ppm"),
            "--delay-ppm" => delay_ppm = parse(&value("--delay-ppm"), "--delay-ppm"),
            "--dup-ppm" => duplicate_ppm = parse(&value("--dup-ppm"), "--dup-ppm"),
            "--max-retries" => max_retries = parse(&value("--max-retries"), "--max-retries"),
            "--max-refs" => {
                let n: usize = parse(&value("--max-refs"), "--max-refs");
                cfg.max_refs_per_client = if n == 0 { usize::MAX } else { n };
            }
            "--deadline-ms" => {
                cfg.request_deadline =
                    Duration::from_millis(parse(&value("--deadline-ms"), "--deadline-ms"))
            }
            "--soak-secs" => {
                let secs: u64 = parse(&value("--soak-secs"), "--soak-secs");
                cfg.soak = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse(&value("--checkpoint-every"), "--checkpoint-every")
            }
            "--max-restarts" => {
                cfg.max_restarts = parse(&value("--max-restarts"), "--max-restarts")
            }
            "--verify-live" => cfg.verify_live = true,
            "--kill-shard" => {
                let shard = parse(&value("--kill-shard"), "--kill-shard");
                let after = cfg.kill.map(|k| k.after_applies).unwrap_or(100);
                cfg.kill = Some(KillSpec {
                    shard,
                    after_applies: after,
                });
            }
            "--kill-after" => {
                let after = parse(&value("--kill-after"), "--kill-after");
                let shard = cfg.kill.map(|k| k.shard).unwrap_or(0);
                cfg.kill = Some(KillSpec {
                    shard,
                    after_applies: after,
                });
            }
            "--wal" => {
                let dir = PathBuf::from(value("--wal"));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("{BIN}: cannot create WAL dir {}: {e}", dir.display());
                    exit(2);
                }
                cfg.wal = Some(WalConfig::on_disk(dir));
            }
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--telemetry" => telemetry_addr = Some(value("--telemetry")),
            "--telemetry-every-ms" => {
                telemetry_every_ms = parse(&value("--telemetry-every-ms"), "--telemetry-every-ms")
            }
            "--help" | "-h" => {
                println!(
                    "{BIN} — the protocol as a live, chaos-hardened service\n\n\
                     Usage: {BIN} [--protocol P] [--workload W] [--nodes N] [--shards K] \
                     [--scale X] [--seed N] [--chaos PPM] [--drop-ppm N] [--nack-ppm N] \
                     [--delay-ppm N] [--dup-ppm N] [--max-retries N] [--max-refs N] \
                     [--deadline-ms N] [--soak-secs N] [--checkpoint-every N] \
                     [--max-restarts N] [--verify-live] [--kill-shard S] [--kill-after N] \
                     [--wal DIR] [--out BASE]\n\
                     \n  --chaos PPM         shorthand: drop = nack = delay = duplicate = PPM\
                     \n  --max-refs N        cap one workload pass at N references per client\
                     \n                      (default 50000; 0 = the full paper-sized trace)\
                     \n  --soak-secs N       soak mode: loop the workload for N seconds\
                     \n  --verify-live       sample-replay journals concurrently with the run\
                     \n  --kill-shard S      crash drill: panic shard S once mid-run\
                     \n  --wal DIR           durable per-shard WAL + snapshots under DIR\
                     \n                      (fsynced before ack; torn tails salvaged on restart)\
                     \n  --out BASE          write BASE.live.kv + per-shard journals/events\
                     \n  --telemetry ADDR    serve live metrics over HTTP at ADDR (port 0 = any\
                     \n                      free port; /metrics, /json, /healthz); with --out,\
                     \n                      also append BASE.telemetry.jsonl snapshots\
                     \n  --telemetry-every-ms N  snapshot cadence (default 250)\n\
                     \nExits 0 only if every client finished, every shard survived, and\n\
                     the differential replay found zero violations."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    cfg.chaos = FaultPlan {
        request: FaultRates {
            drop_ppm,
            nack_ppm,
            delay_ppm,
            duplicate_ppm,
        },
        response: FaultRates {
            drop_ppm,
            nack_ppm: 0,
            delay_ppm,
            duplicate_ppm,
        },
        max_retries,
        max_total_backoff: u64::MAX,
        ..FaultPlan::reliable(cfg.seed ^ 0xC4A0_5EED)
    };
    if let Some(addr) = telemetry_addr {
        let mut spec = TelemetrySpec::on(addr);
        spec.snapshot_every = Duration::from_millis(telemetry_every_ms);
        if let Some(base) = &out {
            spec.snapshot_path = Some(mcc_live::artifacts::telemetry_path(base));
        }
        // Announce the resolved endpoint (port 0 picks a free one) as
        // soon as the listener binds, so a scraper can attach mid-run.
        let (tx, rx) = std::sync::mpsc::channel();
        spec.notify_addr = Some(tx);
        std::thread::spawn(move || {
            if let Ok(addr) = rx.recv() {
                eprintln!("{BIN}: telemetry endpoint at http://{addr}/metrics");
            }
        });
        cfg.telemetry = Some(spec);
    }
    (cfg, out)
}

fn parse<T: FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{BIN}: invalid value {s:?} for {flag}");
        exit(2);
    })
}
