//! Prints Table 1 of the paper — the inter-node message charges per
//! cache operation — directly from the implemented cost model, so the
//! code can be compared against the paper row by row.

use mcc_core::{charge, OpKind};
use mcc_stats::Table;

fn main() {
    let mut table = Table::new([
        "operation",
        "home node",
        "block status",
        "messages w/o data",
        "acks w/ data",
    ]);
    table.title("Table 1 — inter-node messages per operation (DC = ||DistantCopies||)");
    let rows: &[(OpKind, bool, bool)] = &[
        (OpKind::ReadMiss, true, false),
        (OpKind::ReadMiss, true, true),
        (OpKind::ReadMiss, false, false),
        (OpKind::ReadMiss, false, true),
        (OpKind::WriteMiss, true, false),
        (OpKind::WriteMiss, true, true),
        (OpKind::WriteMiss, false, false),
        (OpKind::WriteMiss, false, true),
        (OpKind::WriteHit, true, false),
        (OpKind::WriteHit, false, false),
    ];
    for &(op, local, dirty) in rows {
        // Express the charge symbolically by probing DC = 0 and DC = 1.
        let at0 = charge(op, local, dirty, 0);
        let at1 = charge(op, local, dirty, 1);
        let sym = |base: u64, slope: u64| match (base, slope) {
            (0, 0) => "0".to_string(),
            (b, 0) => b.to_string(),
            (0, 1) => "DC".to_string(),
            (0, s) => format!("{s} x DC"),
            (b, 1) => format!("{b} + DC"),
            (b, s) => format!("{b} + {s} x DC"),
        };
        table.row([
            op.to_string(),
            if local { "local" } else { "remote" }.to_string(),
            if dirty { "dirty" } else { "clean" }.to_string(),
            sym(at0.control, at1.control - at0.control),
            sym(at0.data, at1.data - at0.data),
        ]);
    }
    println!("{table}");
    println!("Eviction traffic (§3.3): remote clean drop = 1 control message;");
    println!("remote dirty replacement = 1 data message; free when the home is local.");
}
