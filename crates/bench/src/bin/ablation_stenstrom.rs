//! §5 comparison: the Cox–Fowler write-miss rule versus the Stenström–
//! Brorsson–Sandberg rule (which also demotes migratory blocks on any
//! write miss). The paper predicts the two behave consistently because
//! the SPLASH programs show very little dynamic reclassification.

use mcc_bench::Scenario;
use mcc_core::{AdaptivePolicy, DirectorySim, DirectorySimConfig, Protocol};
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("ablation_stenstrom", "§5 Stenström-rule comparison");
    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        ..DirectorySimConfig::default()
    };
    let mut table = Table::new([
        "app",
        "basic %",
        "stenström %",
        "basic demotions",
        "stenström demotions",
    ]);
    table.title("Reduction vs conventional: Cox-Fowler basic vs Stenström write-miss rule");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let conv = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
        let basic = DirectorySim::new(Protocol::Basic, &cfg).run(&trace);
        let sten =
            DirectorySim::new(Protocol::Custom(AdaptivePolicy::stenstrom()), &cfg).run(&trace);
        table.row([
            app.name().to_string(),
            format!("{:.1}", basic.percent_reduction_vs(&conv)),
            format!("{:.1}", sten.percent_reduction_vs(&conv)),
            basic.events.became_other.to_string(),
            sten.events.became_other.to_string(),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "The paper (§5): \"Since there is very little dynamic reclassification in the\n\
             SPLASH programs, our dixie simulations are consistent with their results.\""
        );
    }
}
