//! A1 ablation: sweep the three §2 protocol-family axes (initial
//! classification, hysteresis depth, memory across uncached intervals).

use mcc_bench::{policy_ablation, Scenario};
use mcc_stats::Table;
use mcc_workloads::Workload;

fn main() {
    let scenario = Scenario::from_env("ablation_policy", "A1 policy-axis ablation");
    let results = policy_ablation(&scenario);
    let mut labels: Vec<String> = results.iter().map(|(l, _, _)| l.clone()).collect();
    labels.dedup();
    let mut headers = vec!["policy".to_string()];
    headers.extend(Workload::ALL.iter().map(|w| format!("{} %", w.name())));
    let mut table = Table::new(headers);
    table.title("Message reduction vs conventional, by policy (16B blocks, infinite caches)");
    for label in labels.iter().collect::<std::collections::BTreeSet<_>>() {
        let mut row = vec![label.to_string()];
        for app in Workload::ALL {
            let pct = results
                .iter()
                .find(|(l, a, _)| l == label && *a == app)
                .map(|(_, _, p)| *p)
                .unwrap_or(f64::NAN);
            row.push(format!("{pct:.1}"));
        }
        table.row(row);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Paper (§6): with small blocks there is no advantage in being conservative —\n\
             classify immediately, start blocks as migratory, and remember classifications\n\
             across uncached intervals."
        );
    }
}
