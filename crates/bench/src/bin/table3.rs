//! Regenerates Table 3 of the paper: message counts by block size,
//! application, and protocol, with capacity-free caches.

use mcc_bench::{block_size_sweep, render_message_rows, Scenario, BLOCK_SIZES};

fn main() {
    let scenario = Scenario::from_env("table3", "Table 3: message counts by block size");
    println!(
        "Table 3 — message counts (thousands) by block size; infinite caches; \
         {} nodes, scale {}, seed {}\n",
        scenario.nodes, scenario.scale, scenario.seed
    );
    for block in BLOCK_SIZES {
        let rows = block_size_sweep(block, &scenario);
        let table = render_message_rows(&format!("{block} blocks"), &rows);
        if scenario.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
