//! Hot-path throughput benchmark: fast engine vs. reference engine.
//!
//! Drives the same workloads through the reference `DirectoryEngine`
//! and the dense `FastEngine` at several shard counts, reporting
//! refs/sec for every (workload, protocol, engine, shards) cell plus
//! the process's resident memory, and writes the machine-readable
//! summary to `BENCH_hotpath.json` (at the repo root when run from
//! there). Later PRs regenerate the file to track the perf trajectory.
//!
//! Every timed configuration is first checked for bit-exact result
//! equality between the two engines — a fast-but-wrong engine fails
//! loudly before any number is reported.
//!
//! `--min-speedup X` turns the run into a CI gate: exit 1 unless the
//! fast engine reaches `X`× the reference's single-thread refs/sec on
//! every protocol of the migratory workload.
//!
//! Two further gates ride along:
//!
//! * **Tracing overhead** — the FastEngine loop is timed with a
//!   [`NullSink`] attached and again with a live [`TelemetrySink`];
//!   `--max-overhead PCT` (default 3) fails the run when the traced
//!   loop is more than that much slower. This is the observability
//!   plane's hot-path budget.
//! * **Perf trajectory** — every run appends its cells to
//!   `BENCH_trajectory.json` and compares them against the previous
//!   entry with the same fingerprint (host, nodes, scale, samples,
//!   quick); `--max-regression PCT` (default 10) fails on a fast-path
//!   refs/sec drop past the threshold. Entries from other machines or
//!   other workload shapes are skipped, never compared.

use std::process::exit;
use std::time::{SystemTime, UNIX_EPOCH};

use mcc_bench::timing::{measure, measure_cpu_block, measure_detailed, thread_cpu_secs};
use mcc_core::{AnyEngine, DirectorySim, DirectorySimConfig, Engine, EngineKind, Protocol};
use mcc_obs::{shared, Json, NullSink, Telemetry, TelemetrySink, DEFAULT_PUBLISH_EVERY};
use mcc_placement::PagePlacement;
use mcc_trace::Trace;
use mcc_workloads::{
    interleave_streams, GenCtx, MigratoryObjects, ReadMostly, Region, WriteShared,
};

const BIN: &str = "bench";

/// Shard counts benchmarked per configuration (1 = the sequential
/// `run` path; higher counts go through `run_sharded`).
const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// Thread-CPU seconds accumulated per gate-basis measurement block.
/// The scheduler refreshes CPU accounting at tick granularity
/// (1–4 ms), so a block this long keeps the quantization error of a
/// single reading under ~4%.
const GATE_CPU_BLOCK_SECS: f64 = 0.1;

/// CPU blocks per gate-basis measurement; the minimum is kept. Even
/// on-CPU time wobbles with SMT/cache contention from neighbors, and
/// contention only ever slows a block down, so min-of-N converges on
/// the machine's actual capability.
const GATE_CPU_BLOCKS: usize = 3;

/// Min thread-CPU seconds per iteration over [`GATE_CPU_BLOCKS`]
/// blocks, or `None` where the platform hides CPU time.
fn gate_cpu_secs<T>(mut f: impl FnMut() -> T) -> Option<f64> {
    (0..GATE_CPU_BLOCKS)
        .filter_map(|_| measure_cpu_block(GATE_CPU_BLOCK_SECS, &mut f))
        .min_by(f64::total_cmp)
}

/// Protocol points benchmarked: the conventional baseline, the paper's
/// basic and aggressive adaptive points, and pure migratory.
const PROTOCOLS: [Protocol; 4] = [
    Protocol::Conventional,
    Protocol::Basic,
    Protocol::Aggressive,
    Protocol::PureMigratory,
];

struct Args {
    nodes: u16,
    scale: f64,
    seed: u64,
    samples: usize,
    min_speedup: f64,
    max_overhead: f64,
    max_regression: f64,
    out: String,
    trajectory: Option<String>,
    quick: bool,
}

/// The migratory-heavy fixture (Figure-2-style lock-protected records
/// handed from node to node) — the workload the adaptive protocols and
/// the fast engine are both built for, and the one the CI gate runs.
fn migratory_trace(args: &Args) -> Trace {
    let region = MigratoryObjects {
        base: mcc_trace::Addr::new(0),
        objects: 512,
        object_bytes: 64,
        visits_per_object: ((400.0 * args.scale) as u64).max(1),
        reads_per_visit: 2,
        writes_per_visit: 1,
        burst: 3,
        rotate: false,
        stride: 1,
    };
    let mut ctx = GenCtx::new(args.nodes, args.seed);
    let streams = region.streams(&mut ctx);
    interleave_streams(streams, &mut ctx)
}

/// A mixed workload: migratory records, a read-mostly table, and
/// heavily write-shared words, interleaved — closer to a whole
/// application's reference stream than the pure fixture.
fn mixed_trace(args: &Args) -> Trace {
    let mut ctx = GenCtx::new(args.nodes, args.seed ^ 0x6d_6978_6564);
    let mut streams = MigratoryObjects {
        base: mcc_trace::Addr::new(0),
        objects: 256,
        object_bytes: 64,
        visits_per_object: ((200.0 * args.scale) as u64).max(1),
        reads_per_visit: 2,
        writes_per_visit: 1,
        burst: 3,
        rotate: false,
        stride: 1,
    }
    .streams(&mut ctx);
    streams.extend(
        ReadMostly {
            base: mcc_trace::Addr::new(1 << 24),
            bytes: 1 << 16,
            updates: ((50.0 * args.scale) as u64).max(1),
            writes_per_update: 4,
            read_bursts_per_node: ((100.0 * args.scale) as u64).max(1),
            reads_per_burst: 16,
        }
        .streams(&mut ctx),
    );
    streams.extend(
        WriteShared {
            base: mcc_trace::Addr::new(1 << 25),
            words: 32,
            turns: ((200.0 * args.scale) as u64).max(1),
            readers_per_turn: 3,
        }
        .streams(&mut ctx),
    );
    interleave_streams(streams, &mut ctx)
}

/// Resident-set figures from `/proc/self/status`, in bytes:
/// `(current VmRSS, peak VmHWM)`. Zeros on platforms without procfs.
fn resident_memory() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<u64>().ok())
            .map_or(0, |kb| kb * 1024)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

struct Row {
    workload: &'static str,
    protocol: Protocol,
    shards: usize,
    refs: u64,
    reference_rps: u64,
    fast_rps: u64,
    /// Noise-robust fast-path throughput — refs over min *thread-CPU*
    /// seconds where the platform exposes CPU time (Linux), refs over
    /// min wall seconds elsewhere. This is what the trajectory gate
    /// compares across runs: preemption and cgroup throttling stretch
    /// wall time by integer factors but barely move on-CPU time.
    fast_gate_rps: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.reference_rps == 0 {
            0.0
        } else {
            self.fast_rps as f64 / self.reference_rps as f64
        }
    }
}

/// Times one (workload, protocol, shards) cell under both engines,
/// insisting on bit-exact result equality first.
///
/// Single-shard cells time the engine step loop alone, with page
/// placement resolved once up front — that is the engine-vs-engine
/// number the tentpole claims. Sharded cells time the whole fork/join
/// path (`run_sharded`: partitioning, per-shard placement resolution,
/// merging), which is what a parallel caller actually pays.
fn run_cell(
    workload: &'static str,
    protocol: Protocol,
    shards: usize,
    trace: &Trace,
    args: &Args,
) -> Row {
    let config = DirectorySimConfig {
        nodes: args.nodes,
        ..DirectorySimConfig::default()
    };
    let (ref_secs, fast_timing, fast_cpu_secs) = if shards == 1 {
        // The default config profiles the trace for placement; resolve
        // it once so the timed region is pure engine work.
        let placement = PagePlacement::profiled(trace, args.nodes);
        let run = |kind: EngineKind| {
            let mut engine = AnyEngine::new(kind, protocol, &config, placement.clone());
            for r in trace.iter() {
                engine.step(*r);
            }
            engine.finish()
        };
        let want = run(EngineKind::Reference);
        let got = run(EngineKind::Fast);
        assert_eq!(
            want, got,
            "{workload}/{protocol}/K=1: fast engine diverged; refusing to time a wrong engine"
        );
        (
            measure(args.samples, || run(EngineKind::Reference)),
            measure_detailed(args.samples, || run(EngineKind::Fast)),
            gate_cpu_secs(|| run(EngineKind::Fast)),
        )
    } else {
        let reference = DirectorySim::new(protocol, &config).with_engine(EngineKind::Reference);
        let fast = DirectorySim::new(protocol, &config).with_engine(EngineKind::Fast);
        let want = reference.run_sharded(trace, shards);
        let got = fast.run_sharded(trace, shards);
        assert_eq!(
            want, got,
            "{workload}/{protocol}/K={shards}: fast engine diverged; refusing to time a wrong engine"
        );
        (
            measure(args.samples, || reference.run_sharded(trace, shards)),
            measure_detailed(args.samples, || fast.run_sharded(trace, shards)),
            // Sharded cells burn their CPU on worker threads, which
            // the calling thread's accounting can't see — their gate
            // basis stays min wall time.
            None,
        )
    };
    let refs = trace.len() as u64;
    let rps = |secs: f64| {
        if secs > 0.0 {
            (refs as f64 / secs) as u64
        } else {
            0
        }
    };
    let row = Row {
        workload,
        protocol,
        shards,
        refs,
        reference_rps: rps(ref_secs),
        fast_rps: rps(fast_timing.wall_median),
        fast_gate_rps: rps(fast_cpu_secs.unwrap_or(fast_timing.wall_min)),
    };
    let name = protocol.to_string();
    eprintln!(
        "{BIN}: {workload:<9} {name:<14} K={shards}  reference {:>12} refs/s  fast {:>12} \
         refs/s  ({:.2}x)",
        row.reference_rps,
        row.fast_rps,
        row.speedup()
    );
    row
}

/// Times the single-thread FastEngine loop on the migratory workload
/// (Basic protocol) twice — once with a `NullSink` attached, once with
/// a live batched `TelemetrySink` — and returns
/// `(null_rps, traced_rps, overhead_pct)`.
///
/// The baseline is a *sink*, not `None`: both loops pay event
/// construction and the shared-sink lock, so the delta isolates what
/// the telemetry plane itself adds (local aggregation plus one atomic
/// publish per batch). Results are asserted bit-exact first — a sink
/// that changed the simulation would be a correctness bug, not an
/// overhead.
fn tracing_overhead(trace: &Trace, args: &Args) -> (u64, u64, f64) {
    let config = DirectorySimConfig {
        nodes: args.nodes,
        ..DirectorySimConfig::default()
    };
    let placement = PagePlacement::profiled(trace, args.nodes);
    let run_with = |sink: mcc_obs::SharedSink| {
        let mut engine = AnyEngine::new(
            EngineKind::Fast,
            Protocol::Basic,
            &config,
            placement.clone(),
        );
        engine.set_sink(Some(sink));
        for r in trace.iter() {
            engine.step(*r);
        }
        engine.finish()
    };
    let plane = Telemetry::new();
    let want = run_with(shared(NullSink).1);
    let got = run_with(shared(TelemetrySink::new(&plane, DEFAULT_PUBLISH_EVERY)).1);
    assert_eq!(
        want, got,
        "telemetry sink changed the simulation; refusing to time a non-inert tracer"
    );
    // The per-ref delta being measured is a few nanoseconds on a
    // ~10ms loop, and this can run on hosts whose wall-clock rate
    // swings by integer factors (cgroup throttling, noisy neighbors).
    // So the two sides are timed in interleaved blocks — on *thread
    // CPU* time in ≥0.1s blocks where the platform exposes it, on
    // single-iteration wall time otherwise — and the gate compares
    // each side's *minimum*. Contention only ever inflates a reading
    // (SMT/IPC interference stretches even on-CPU time), never
    // deflates it, so the min of several interleaved blocks is each
    // side's cleanest measurement; a per-pair ratio median, by
    // contrast, is corrupted whenever one burst spans most of the
    // sampling window.
    let cpu_basis = thread_cpu_secs().is_some();
    let samples = if cpu_basis { 7 } else { args.samples.max(31) };
    let mut null_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    for _ in 0..samples {
        let null_run = || run_with(shared(NullSink).1);
        let traced_run = || run_with(shared(TelemetrySink::new(&plane, DEFAULT_PUBLISH_EVERY)).1);
        let null = measure_cpu_block(GATE_CPU_BLOCK_SECS, null_run)
            .unwrap_or_else(|| measure_detailed(1, null_run).wall_min);
        let traced = measure_cpu_block(GATE_CPU_BLOCK_SECS, traced_run)
            .unwrap_or_else(|| measure_detailed(1, traced_run).wall_min);
        null_secs = null_secs.min(null);
        traced_secs = traced_secs.min(traced);
    }
    let refs = trace.len() as f64;
    let rps = |secs: f64| if secs > 0.0 { (refs / secs) as u64 } else { 0 };
    let overhead_pct = if null_secs > 0.0 && null_secs.is_finite() {
        (traced_secs / null_secs - 1.0) * 100.0
    } else {
        0.0
    };
    (rps(null_secs), rps(traced_secs), overhead_pct)
}

/// Best-effort machine identity for the trajectory fingerprint, so
/// numbers from different machines are never compared.
fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Re-measures just the fast-path gate throughput of one cell — no
/// reference engine, no parity re-check. The trajectory gate uses this
/// to confirm an apparent regression before failing the run: a real
/// regression reproduces, a multi-second contention burst rarely
/// survives into a second reading minutes of work later.
fn remeasure_gate_rps(row: &Row, trace: &Trace, args: &Args) -> u64 {
    let config = DirectorySimConfig {
        nodes: args.nodes,
        ..DirectorySimConfig::default()
    };
    let refs = trace.len() as f64;
    let rps = |secs: f64| if secs > 0.0 { (refs / secs) as u64 } else { 0 };
    if row.shards == 1 {
        let placement = PagePlacement::profiled(trace, args.nodes);
        let run = || {
            let mut engine =
                AnyEngine::new(EngineKind::Fast, row.protocol, &config, placement.clone());
            for r in trace.iter() {
                engine.step(*r);
            }
            engine.finish()
        };
        rps(gate_cpu_secs(run).unwrap_or_else(|| measure_detailed(args.samples, run).wall_min))
    } else {
        let fast = DirectorySim::new(row.protocol, &config).with_engine(EngineKind::Fast);
        rps(measure_detailed(args.samples, || fast.run_sharded(trace, row.shards)).wall_min)
    }
}

/// Appends this run to the trajectory file and gates against the
/// previous entry with the same fingerprint. Returns the regression
/// failure message, if any; the entry is appended either way, so the
/// file records the regression itself. Cells that appear regressed get
/// one confirmation re-measure (via `remeasure`) and keep their better
/// reading — both for the gate verdict and for the appended entry, so
/// one noise burst can't ratchet the next run's baseline down.
fn update_trajectory(
    path: &str,
    args: &Args,
    rows: &mut [Row],
    overhead_pct: f64,
    remeasure: impl Fn(&Row) -> u64,
) -> Result<(), String> {
    let fingerprint = |v: &Json| -> (u64, String, u64, bool, String, String) {
        (
            v.get("nodes").and_then(Json::as_u64).unwrap_or(0),
            v.get("scale")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            v.get("samples").and_then(Json::as_u64).unwrap_or(0),
            v.get("quick")
                .map(|q| *q == Json::Bool(true))
                .unwrap_or(false),
            v.get("host")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            v.get("gate_basis")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        )
    };

    let mut entries: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(top) => top
                .get("entries")
                .and_then(Json::as_arr)
                .map(|a| a.to_vec())
                .unwrap_or_default(),
            Err(e) => {
                eprintln!("{BIN}: {path} is corrupt ({e}); starting a fresh trajectory");
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };

    // The previous comparable entry: same machine, same workload shape.
    let gate_basis = if thread_cpu_secs().is_some() {
        "cpu"
    } else {
        "wall"
    };
    let my_fingerprint = (
        u64::from(args.nodes),
        format!("{}", args.scale),
        args.samples as u64,
        args.quick,
        hostname(),
        gate_basis.to_string(),
    );
    let previous = entries
        .iter()
        .rev()
        .find(|e| fingerprint(e) == my_fingerprint)
        .cloned();

    // Gate throughput of the previous run's matching cell, if any.
    let prev_gate_rps = |prev: &Json, row: &Row| -> Option<u64> {
        prev.get("rows")
            .and_then(Json::as_arr)
            .and_then(|rs| {
                rs.iter().find(|p| {
                    p.get("workload").and_then(Json::as_str) == Some(row.workload)
                        && p.get("protocol").and_then(Json::as_str)
                            == Some(row.protocol.to_string().as_str())
                        && p.get("shards").and_then(Json::as_u64) == Some(row.shards as u64)
                })
            })
            .and_then(|p| p.get("fast_gate_refs_per_sec").and_then(Json::as_u64))
    };

    // Confirmation pass, before anything is written: any cell that
    // appears regressed is re-measured once and keeps its better
    // reading. Host-noise bursts on a shared machine last seconds and
    // hit one measurement window; a real regression is still there on
    // the second look.
    let floor = 1.0 - args.max_regression / 100.0;
    if args.max_regression > 0.0 {
        if let Some(prev) = &previous {
            for row in rows.iter_mut() {
                let Some(before) = prev_gate_rps(prev, row).filter(|&b| b > 0) else {
                    continue;
                };
                if (row.fast_gate_rps as f64) < before as f64 * floor {
                    eprintln!(
                        "{BIN}: {}/{}/K={} gate throughput {} vs {} previously; \
                         re-measuring to confirm",
                        row.workload, row.protocol, row.shards, row.fast_gate_rps, before
                    );
                    let again = remeasure(row);
                    row.fast_gate_rps = row.fast_gate_rps.max(again);
                }
            }
        }
    }

    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let entry = Json::Obj(vec![
        ("unix_ms".into(), Json::u64(unix_ms)),
        ("host".into(), Json::Str(hostname())),
        ("nodes".into(), Json::u64(u64::from(args.nodes))),
        ("scale".into(), Json::Str(format!("{}", args.scale))),
        ("samples".into(), Json::u64(args.samples as u64)),
        ("quick".into(), Json::Bool(args.quick)),
        ("gate_basis".into(), Json::Str(gate_basis.into())),
        (
            "tracing_overhead_pct".into(),
            Json::Str(format!("{overhead_pct:.2}")),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("workload".into(), Json::Str(r.workload.into())),
                            ("protocol".into(), Json::Str(r.protocol.to_string())),
                            ("shards".into(), Json::u64(r.shards as u64)),
                            ("fast_refs_per_sec".into(), Json::u64(r.fast_rps)),
                            ("fast_gate_refs_per_sec".into(), Json::u64(r.fast_gate_rps)),
                            ("reference_refs_per_sec".into(), Json::u64(r.reference_rps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    entries.push(entry);
    let top = Json::Obj(vec![
        ("tool".into(), Json::Str(BIN.into())),
        ("entries".into(), Json::Arr(entries)),
    ]);
    std::fs::write(path, format!("{top}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("{BIN}: appended run to {path}");

    let Some(prev) = previous else {
        eprintln!("{BIN}: no previous comparable entry in {path}; trajectory gate skipped");
        return Ok(());
    };
    if args.max_regression <= 0.0 {
        return Ok(());
    }
    let mut worst: Option<(String, u64, u64, f64)> = None;
    for row in rows.iter() {
        let Some(prev_rps) = prev_gate_rps(&prev, row).filter(|&b| b > 0) else {
            continue;
        };
        let ratio = row.fast_gate_rps as f64 / prev_rps as f64;
        if worst.as_ref().is_none_or(|(_, _, _, w)| ratio < *w) {
            worst = Some((
                format!("{}/{}/K={}", row.workload, row.protocol, row.shards),
                row.fast_gate_rps,
                prev_rps,
                ratio,
            ));
        }
    }
    if let Some((cell, now, before, ratio)) = worst {
        if ratio < floor {
            return Err(format!(
                "trajectory regression: {cell} fast path at {now} refs/s vs {before} previously \
                 ({:.1}% drop, gate allows {:.1}%)",
                (1.0 - ratio) * 100.0,
                args.max_regression
            ));
        }
        eprintln!(
            "{BIN}: trajectory gate passed: worst cell {cell} at {:.1}% of previous",
            ratio * 100.0
        );
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let workloads: Vec<(&'static str, Trace)> = vec![
        ("migratory", migratory_trace(&args)),
        ("mixed", mixed_trace(&args)),
    ];
    let shard_counts: &[usize] = if args.quick { &[1] } else { &SHARD_COUNTS };

    let mut rows = Vec::new();
    for (workload, trace) in &workloads {
        eprintln!(
            "{BIN}: {workload}: {} refs over {} nodes",
            trace.len(),
            args.nodes
        );
        for &protocol in &PROTOCOLS {
            for &shards in shard_counts {
                rows.push(run_cell(workload, protocol, shards, trace, &args));
            }
        }
    }

    // Tracing overhead: the observability plane's hot-path budget. A
    // reading over budget gets up to two confirmation passes before it
    // can fail the gate — real overhead reproduces in every window,
    // while a noisy neighbor's burst has to span all three multi-second
    // windows to slip through — and the lowest reading is the one
    // reported.
    let mut overhead = tracing_overhead(&workloads[0].1, &args);
    for _ in 0..2 {
        if args.max_overhead <= 0.0 || overhead.2 <= args.max_overhead {
            break;
        }
        eprintln!(
            "{BIN}: tracing overhead measured at {:+.2}%; re-measuring to confirm",
            overhead.2
        );
        let retry = tracing_overhead(&workloads[0].1, &args);
        if retry.2 < overhead.2 {
            overhead = retry;
        }
    }
    let (null_rps, traced_rps, overhead_pct) = overhead;
    eprintln!(
        "{BIN}: tracing overhead: NullSink {null_rps} refs/s, TelemetrySink {traced_rps} refs/s \
         ({overhead_pct:+.2}%)"
    );

    let (rss, rss_peak) = resident_memory();
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("workload".into(), Json::Str(r.workload.into())),
                ("protocol".into(), Json::Str(r.protocol.to_string())),
                ("shards".into(), Json::u64(r.shards as u64)),
                ("refs".into(), Json::u64(r.refs)),
                ("reference_refs_per_sec".into(), Json::u64(r.reference_rps)),
                ("fast_refs_per_sec".into(), Json::u64(r.fast_rps)),
                ("fast_gate_refs_per_sec".into(), Json::u64(r.fast_gate_rps)),
                ("speedup".into(), Json::Str(format!("{:.2}", r.speedup()))),
            ])
        })
        .collect();
    let summary = Json::Obj(vec![
        ("tool".into(), Json::Str(BIN.into())),
        ("nodes".into(), Json::u64(u64::from(args.nodes))),
        ("seed".into(), Json::u64(args.seed)),
        ("scale".into(), Json::Str(format!("{}", args.scale))),
        ("samples".into(), Json::u64(args.samples as u64)),
        ("quick".into(), Json::Bool(args.quick)),
        ("rss_bytes".into(), Json::u64(rss)),
        ("rss_peak_bytes".into(), Json::u64(rss_peak)),
        ("tracing_null_refs_per_sec".into(), Json::u64(null_rps)),
        (
            "tracing_telemetry_refs_per_sec".into(),
            Json::u64(traced_rps),
        ),
        (
            "tracing_overhead_pct".into(),
            Json::Str(format!("{overhead_pct:.2}")),
        ),
        ("rows".into(), Json::Arr(json_rows)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{summary}\n")) {
        eprintln!("{BIN}: cannot write {}: {e}", args.out);
        exit(1);
    }
    eprintln!("{BIN}: wrote {}", args.out);

    if args.min_speedup > 0.0 {
        let gate: Vec<&Row> = rows
            .iter()
            .filter(|r| r.workload == "migratory" && r.shards == 1)
            .collect();
        let worst = gate
            .iter()
            .min_by(|a, b| a.speedup().partial_cmp(&b.speedup()).expect("finite"))
            .expect("the migratory workload always runs at one shard");
        if worst.speedup() < args.min_speedup {
            eprintln!(
                "{BIN}: FAIL: fast engine at {:.2}x reference on {}/{} single-thread, \
                 gate requires {:.2}x",
                worst.speedup(),
                worst.workload,
                worst.protocol,
                args.min_speedup
            );
            exit(1);
        }
        eprintln!(
            "{BIN}: gate passed: worst single-thread migratory speedup {:.2}x >= {:.2}x",
            worst.speedup(),
            args.min_speedup
        );
    }

    if args.max_overhead > 0.0 && overhead_pct > args.max_overhead {
        eprintln!(
            "{BIN}: FAIL: tracing overhead {overhead_pct:.2}% exceeds the {:.1}% budget \
             (NullSink {null_rps} refs/s vs TelemetrySink {traced_rps} refs/s)",
            args.max_overhead
        );
        exit(1);
    }

    if let Some(path) = &args.trajectory {
        let remeasure = |row: &Row| {
            let trace = &workloads
                .iter()
                .find(|(w, _)| *w == row.workload)
                .expect("every row comes from a workload in this run")
                .1;
            remeasure_gate_rps(row, trace, &args)
        };
        if let Err(msg) = update_trajectory(path, &args, &mut rows, overhead_pct, remeasure) {
            eprintln!("{BIN}: FAIL: {msg}");
            exit(1);
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 16,
        scale: 1.0,
        seed: 0x5eed_b16b_005e,
        samples: 5,
        min_speedup: 0.0,
        max_overhead: 3.0,
        max_regression: 10.0,
        out: "BENCH_hotpath.json".to_string(),
        trajectory: Some("BENCH_trajectory.json".to_string()),
        quick: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        fn num<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{BIN}: {name}: bad value {raw:?}");
                exit(2);
            })
        }
        match arg.as_str() {
            "--nodes" => args.nodes = num("--nodes", &value("--nodes")),
            "--scale" => args.scale = num("--scale", &value("--scale")),
            "--seed" => args.seed = num("--seed", &value("--seed")),
            "--samples" => args.samples = num("--samples", &value("--samples")),
            "--min-speedup" => args.min_speedup = num("--min-speedup", &value("--min-speedup")),
            "--max-overhead" => args.max_overhead = num("--max-overhead", &value("--max-overhead")),
            "--max-regression" => {
                args.max_regression = num("--max-regression", &value("--max-regression"));
            }
            "--out" => args.out = value("--out"),
            "--trajectory" => args.trajectory = Some(value("--trajectory")),
            "--no-trajectory" => args.trajectory = None,
            "--quick" => {
                args.quick = true;
                args.scale = 0.25;
                args.samples = 3;
            }
            "--help" | "-h" => {
                println!(
                    "{BIN} — fast-engine vs reference-engine throughput benchmark\n\n\
                     Usage: {BIN} [options]\n\
                     \n  --nodes N        simulated machine size (default 16)\
                     \n  --scale X        workload work multiplier (default 1.0)\
                     \n  --seed N         workload RNG seed (default 0x5eedb16b005e)\
                     \n  --samples N      timed samples per cell, median reported (default 5)\
                     \n  --min-speedup X  exit 1 unless fast >= X times reference refs/sec\
                     \n                   single-thread on the migratory workload (default: off)\
                     \n  --max-overhead P exit 1 when the TelemetrySink-traced FastEngine loop\
                     \n                   is more than P% slower than NullSink (default 3, 0 = off)\
                     \n  --max-regression P  exit 1 when a cell's fast refs/sec drops more than\
                     \n                   P% vs the previous comparable trajectory entry (default 10)\
                     \n  --out PATH       summary path (default BENCH_hotpath.json)\
                     \n  --trajectory PATH  perf-trajectory file (default BENCH_trajectory.json)\
                     \n  --no-trajectory  skip the trajectory append + gate\
                     \n  --quick          CI smoke preset: scale 0.25, 3 samples, 1 shard\n\
                     \nWrites a JSON summary with refs/sec per workload x protocol x shard\
                     \ncount for both engines, plus resident memory (VmRSS/VmHWM), and appends\
                     \nthe run to the trajectory file for cross-run regression tracking."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    args
}
