//! Hot-path throughput benchmark: fast engine vs. reference engine.
//!
//! Drives the same workloads through the reference `DirectoryEngine`
//! and the dense `FastEngine` at several shard counts, reporting
//! refs/sec for every (workload, protocol, engine, shards) cell plus
//! the process's resident memory, and writes the machine-readable
//! summary to `BENCH_hotpath.json` (at the repo root when run from
//! there). Later PRs regenerate the file to track the perf trajectory.
//!
//! Every timed configuration is first checked for bit-exact result
//! equality between the two engines — a fast-but-wrong engine fails
//! loudly before any number is reported.
//!
//! `--min-speedup X` turns the run into a CI gate: exit 1 unless the
//! fast engine reaches `X`× the reference's single-thread refs/sec on
//! every protocol of the migratory workload.

use std::process::exit;

use mcc_bench::timing::measure;
use mcc_core::{AnyEngine, DirectorySim, DirectorySimConfig, Engine, EngineKind, Protocol};
use mcc_obs::Json;
use mcc_placement::PagePlacement;
use mcc_trace::Trace;
use mcc_workloads::{
    interleave_streams, GenCtx, MigratoryObjects, ReadMostly, Region, WriteShared,
};

const BIN: &str = "bench";

/// Shard counts benchmarked per configuration (1 = the sequential
/// `run` path; higher counts go through `run_sharded`).
const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// Protocol points benchmarked: the conventional baseline, the paper's
/// basic and aggressive adaptive points, and pure migratory.
const PROTOCOLS: [Protocol; 4] = [
    Protocol::Conventional,
    Protocol::Basic,
    Protocol::Aggressive,
    Protocol::PureMigratory,
];

struct Args {
    nodes: u16,
    scale: f64,
    seed: u64,
    samples: usize,
    min_speedup: f64,
    out: String,
    quick: bool,
}

/// The migratory-heavy fixture (Figure-2-style lock-protected records
/// handed from node to node) — the workload the adaptive protocols and
/// the fast engine are both built for, and the one the CI gate runs.
fn migratory_trace(args: &Args) -> Trace {
    let region = MigratoryObjects {
        base: mcc_trace::Addr::new(0),
        objects: 512,
        object_bytes: 64,
        visits_per_object: ((400.0 * args.scale) as u64).max(1),
        reads_per_visit: 2,
        writes_per_visit: 1,
        burst: 3,
        rotate: false,
        stride: 1,
    };
    let mut ctx = GenCtx::new(args.nodes, args.seed);
    let streams = region.streams(&mut ctx);
    interleave_streams(streams, &mut ctx)
}

/// A mixed workload: migratory records, a read-mostly table, and
/// heavily write-shared words, interleaved — closer to a whole
/// application's reference stream than the pure fixture.
fn mixed_trace(args: &Args) -> Trace {
    let mut ctx = GenCtx::new(args.nodes, args.seed ^ 0x6d_6978_6564);
    let mut streams = MigratoryObjects {
        base: mcc_trace::Addr::new(0),
        objects: 256,
        object_bytes: 64,
        visits_per_object: ((200.0 * args.scale) as u64).max(1),
        reads_per_visit: 2,
        writes_per_visit: 1,
        burst: 3,
        rotate: false,
        stride: 1,
    }
    .streams(&mut ctx);
    streams.extend(
        ReadMostly {
            base: mcc_trace::Addr::new(1 << 24),
            bytes: 1 << 16,
            updates: ((50.0 * args.scale) as u64).max(1),
            writes_per_update: 4,
            read_bursts_per_node: ((100.0 * args.scale) as u64).max(1),
            reads_per_burst: 16,
        }
        .streams(&mut ctx),
    );
    streams.extend(
        WriteShared {
            base: mcc_trace::Addr::new(1 << 25),
            words: 32,
            turns: ((200.0 * args.scale) as u64).max(1),
            readers_per_turn: 3,
        }
        .streams(&mut ctx),
    );
    interleave_streams(streams, &mut ctx)
}

/// Resident-set figures from `/proc/self/status`, in bytes:
/// `(current VmRSS, peak VmHWM)`. Zeros on platforms without procfs.
fn resident_memory() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<u64>().ok())
            .map_or(0, |kb| kb * 1024)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

struct Row {
    workload: &'static str,
    protocol: Protocol,
    shards: usize,
    refs: u64,
    reference_rps: u64,
    fast_rps: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.reference_rps == 0 {
            0.0
        } else {
            self.fast_rps as f64 / self.reference_rps as f64
        }
    }
}

/// Times one (workload, protocol, shards) cell under both engines,
/// insisting on bit-exact result equality first.
///
/// Single-shard cells time the engine step loop alone, with page
/// placement resolved once up front — that is the engine-vs-engine
/// number the tentpole claims. Sharded cells time the whole fork/join
/// path (`run_sharded`: partitioning, per-shard placement resolution,
/// merging), which is what a parallel caller actually pays.
fn run_cell(
    workload: &'static str,
    protocol: Protocol,
    shards: usize,
    trace: &Trace,
    args: &Args,
) -> Row {
    let config = DirectorySimConfig {
        nodes: args.nodes,
        ..DirectorySimConfig::default()
    };
    let (ref_secs, fast_secs) = if shards == 1 {
        // The default config profiles the trace for placement; resolve
        // it once so the timed region is pure engine work.
        let placement = PagePlacement::profiled(trace, args.nodes);
        let run = |kind: EngineKind| {
            let mut engine = AnyEngine::new(kind, protocol, &config, placement.clone());
            for r in trace.iter() {
                engine.step(*r);
            }
            engine.finish()
        };
        let want = run(EngineKind::Reference);
        let got = run(EngineKind::Fast);
        assert_eq!(
            want, got,
            "{workload}/{protocol}/K=1: fast engine diverged; refusing to time a wrong engine"
        );
        (
            measure(args.samples, || run(EngineKind::Reference)),
            measure(args.samples, || run(EngineKind::Fast)),
        )
    } else {
        let reference = DirectorySim::new(protocol, &config).with_engine(EngineKind::Reference);
        let fast = DirectorySim::new(protocol, &config).with_engine(EngineKind::Fast);
        let want = reference.run_sharded(trace, shards);
        let got = fast.run_sharded(trace, shards);
        assert_eq!(
            want, got,
            "{workload}/{protocol}/K={shards}: fast engine diverged; refusing to time a wrong engine"
        );
        (
            measure(args.samples, || reference.run_sharded(trace, shards)),
            measure(args.samples, || fast.run_sharded(trace, shards)),
        )
    };
    let refs = trace.len() as u64;
    let rps = |secs: f64| {
        if secs > 0.0 {
            (refs as f64 / secs) as u64
        } else {
            0
        }
    };
    let row = Row {
        workload,
        protocol,
        shards,
        refs,
        reference_rps: rps(ref_secs),
        fast_rps: rps(fast_secs),
    };
    let name = protocol.to_string();
    eprintln!(
        "{BIN}: {workload:<9} {name:<14} K={shards}  reference {:>12} refs/s  fast {:>12} \
         refs/s  ({:.2}x)",
        row.reference_rps,
        row.fast_rps,
        row.speedup()
    );
    row
}

fn main() {
    let args = parse_args();
    let workloads: Vec<(&'static str, Trace)> = vec![
        ("migratory", migratory_trace(&args)),
        ("mixed", mixed_trace(&args)),
    ];
    let shard_counts: &[usize] = if args.quick { &[1] } else { &SHARD_COUNTS };

    let mut rows = Vec::new();
    for (workload, trace) in &workloads {
        eprintln!(
            "{BIN}: {workload}: {} refs over {} nodes",
            trace.len(),
            args.nodes
        );
        for &protocol in &PROTOCOLS {
            for &shards in shard_counts {
                rows.push(run_cell(workload, protocol, shards, trace, &args));
            }
        }
    }

    let (rss, rss_peak) = resident_memory();
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("workload".into(), Json::Str(r.workload.into())),
                ("protocol".into(), Json::Str(r.protocol.to_string())),
                ("shards".into(), Json::u64(r.shards as u64)),
                ("refs".into(), Json::u64(r.refs)),
                ("reference_refs_per_sec".into(), Json::u64(r.reference_rps)),
                ("fast_refs_per_sec".into(), Json::u64(r.fast_rps)),
                ("speedup".into(), Json::Str(format!("{:.2}", r.speedup()))),
            ])
        })
        .collect();
    let summary = Json::Obj(vec![
        ("tool".into(), Json::Str(BIN.into())),
        ("nodes".into(), Json::u64(u64::from(args.nodes))),
        ("seed".into(), Json::u64(args.seed)),
        ("scale".into(), Json::Str(format!("{}", args.scale))),
        ("samples".into(), Json::u64(args.samples as u64)),
        ("quick".into(), Json::Bool(args.quick)),
        ("rss_bytes".into(), Json::u64(rss)),
        ("rss_peak_bytes".into(), Json::u64(rss_peak)),
        ("rows".into(), Json::Arr(json_rows)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{summary}\n")) {
        eprintln!("{BIN}: cannot write {}: {e}", args.out);
        exit(1);
    }
    eprintln!("{BIN}: wrote {}", args.out);

    if args.min_speedup > 0.0 {
        let gate: Vec<&Row> = rows
            .iter()
            .filter(|r| r.workload == "migratory" && r.shards == 1)
            .collect();
        let worst = gate
            .iter()
            .min_by(|a, b| a.speedup().partial_cmp(&b.speedup()).expect("finite"))
            .expect("the migratory workload always runs at one shard");
        if worst.speedup() < args.min_speedup {
            eprintln!(
                "{BIN}: FAIL: fast engine at {:.2}x reference on {}/{} single-thread, \
                 gate requires {:.2}x",
                worst.speedup(),
                worst.workload,
                worst.protocol,
                args.min_speedup
            );
            exit(1);
        }
        eprintln!(
            "{BIN}: gate passed: worst single-thread migratory speedup {:.2}x >= {:.2}x",
            worst.speedup(),
            args.min_speedup
        );
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 16,
        scale: 1.0,
        seed: 0x5eed_b16b_005e,
        samples: 5,
        min_speedup: 0.0,
        out: "BENCH_hotpath.json".to_string(),
        quick: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        fn num<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{BIN}: {name}: bad value {raw:?}");
                exit(2);
            })
        }
        match arg.as_str() {
            "--nodes" => args.nodes = num("--nodes", &value("--nodes")),
            "--scale" => args.scale = num("--scale", &value("--scale")),
            "--seed" => args.seed = num("--seed", &value("--seed")),
            "--samples" => args.samples = num("--samples", &value("--samples")),
            "--min-speedup" => args.min_speedup = num("--min-speedup", &value("--min-speedup")),
            "--out" => args.out = value("--out"),
            "--quick" => {
                args.quick = true;
                args.scale = 0.25;
                args.samples = 3;
            }
            "--help" | "-h" => {
                println!(
                    "{BIN} — fast-engine vs reference-engine throughput benchmark\n\n\
                     Usage: {BIN} [options]\n\
                     \n  --nodes N        simulated machine size (default 16)\
                     \n  --scale X        workload work multiplier (default 1.0)\
                     \n  --seed N         workload RNG seed (default 0x5eedb16b005e)\
                     \n  --samples N      timed samples per cell, median reported (default 5)\
                     \n  --min-speedup X  exit 1 unless fast >= X times reference refs/sec\
                     \n                   single-thread on the migratory workload (default: off)\
                     \n  --out PATH       summary path (default BENCH_hotpath.json)\
                     \n  --quick          CI smoke preset: scale 0.25, 3 samples, 1 shard\n\
                     \nWrites a JSON summary with refs/sec per workload x protocol x shard\
                     \ncount for both engines, plus resident memory (VmRSS/VmHWM)."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    args
}
