//! Classifies the sharing pattern of every block in each synthetic
//! workload (at 16-byte granularity) and reports the reference-weighted
//! distribution — the validation that the trace substitution preserves
//! the sharing structure the paper's protocols react to.

use mcc_bench::Scenario;
use mcc_stats::Table;
use mcc_trace::{BlockSize, Classification, SharingPattern};
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("classify", "workload sharing-pattern census");
    let mut table = Table::new([
        "app",
        "private %",
        "read-only %",
        "migratory %",
        "prod/cons %",
        "write-shared %",
        "blocks",
    ]);
    table.title("Reference-weighted sharing-pattern distribution (16B blocks)");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let c = Classification::of(&trace, BlockSize::B16);
        let mut row = vec![app.name().to_string()];
        for pattern in SharingPattern::ALL {
            row.push(format!("{:.1}", c.ref_fraction(pattern) * 100.0));
        }
        row.push(c.len().to_string());
        table.row(row);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Expected structure (§3.1 + the sharing-pattern literature): MP3D, Water and\n\
             Cholesky dominated by migratory references; Locus Route by read-only grid\n\
             references; Pthor mixed."
        );
    }
}
