//! Kill-at-every-I/O storage torture harness.
//!
//! For each scenario the harness first runs it once on a fault-free
//! [`ChaosStorage`] to count the scenario's I/O ops and capture the
//! reference result, then re-runs it once per op index with a
//! simulated power cut at exactly that op, restarts from whatever the
//! cut left durable, and asserts the restarted run reaches the
//! reference result bit-exactly (or degrades through an explicitly
//! reported path — never silently).
//!
//! Scenarios:
//!
//! * **sequential** — a checkpointed single-process simulation
//!   ([`DirectorySim::run_resumable_on`]) over a migratory trace. A
//!   machine-scope kill collapses every file to its durable image; the
//!   restart loads the snapshot with last-good `.prev` fallback (or
//!   reruns fresh when the cut predates the first publish) and must
//!   reproduce the uninterrupted [`SimResult`] exactly.
//! * **live** — the live service with a durable per-shard WAL
//!   ([`WalConfig::with_storage`]). A file-scope kill crashes the one
//!   shard whose I/O hit the kill-point; its replacement incarnation
//!   salvages the WAL's torn tail, reconciles acked-but-uncommitted
//!   records, and the whole run must still pass its own differential
//!   replay verification ([`LiveReport::ok`]).
//!
//! The sweep prints a JSON report (`--out FILE` to also write it) and
//! exits non-zero if any op index left an unrecovered state. `--stride
//! N` / `--max-kills N` bound the sweep for CI smoke runs; the
//! unbounded default sweeps *every* op index.

use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use mcc_core::storage::KILLED_MARKER;
use mcc_core::{
    ChaosStorage, Checkpoint, CheckpointError, CheckpointPolicy, DirectorySim, DirectorySimConfig,
    KillScope, Protocol, SimError, SnapshotGeneration, StorageFaultPlan,
};
use mcc_live::{run_live, LiveConfig, WalConfig, WalStats};
use mcc_trace::{Addr, MemRef, NodeId, Trace};

const BIN: &str = "torture";

struct Args {
    scenario: Scenario,
    seed: u64,
    stride: u64,
    max_kills: u64,
    out: Option<PathBuf>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Sequential,
    Live,
    Both,
}

/// One scenario's sweep results, rendered into the JSON report.
struct SweepReport {
    name: &'static str,
    ops_total: u64,
    swept: u64,
    stride: u64,
    completed_before_kill: u64,
    recovered_current: u64,
    recovered_prev: u64,
    fresh_rerun: u64,
    unrecovered: Vec<String>,
    wal: Option<WalStats>,
    wall_ms: u128,
}

impl SweepReport {
    fn ok(&self) -> bool {
        self.unrecovered.is_empty()
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"ops_total\":{},\"swept\":{},\"stride\":{},\
             \"outcomes\":{{\"completed_before_kill\":{},\"recovered_current\":{},\
             \"recovered_prev\":{},\"fresh_rerun\":{}}}",
            self.name,
            self.ops_total,
            self.swept,
            self.stride,
            self.completed_before_kill,
            self.recovered_current,
            self.recovered_prev,
            self.fresh_rerun,
        );
        if let Some(w) = &self.wal {
            s.push_str(&format!(
                ",\"wal\":{{\"torn_tails\":{},\"dropped_bytes\":{},\"reconciled\":{},\
                 \"prev_snapshot_loads\":{}}}",
                w.torn_tails, w.dropped_bytes, w.reconciled, w.prev_snapshot_loads
            ));
        }
        s.push_str(&format!(
            ",\"unrecovered\":{},\"wall_ms\":{}}}",
            self.unrecovered.len(),
            self.wall_ms
        ));
        s
    }
}

fn main() {
    let args = parse_args();
    let mut reports = Vec::new();
    if matches!(args.scenario, Scenario::Sequential | Scenario::Both) {
        reports.push(sequential_sweep(&args));
    }
    if matches!(args.scenario, Scenario::Live | Scenario::Both) {
        reports.push(live_sweep(&args));
    }

    let ok = reports.iter().all(SweepReport::ok);
    let json = format!(
        "{{\"scenarios\":[{}],\"ok\":{ok}}}",
        reports
            .iter()
            .map(SweepReport::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("{json}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("{BIN}: writing {}: {e}", path.display());
            exit(2);
        }
    }
    for report in &reports {
        for failure in &report.unrecovered {
            eprintln!("{BIN}: {}: UNRECOVERED: {failure}", report.name);
        }
    }
    exit(i32::from(!ok));
}

/// A migratory sharing trace: blocks handed read-then-write from node
/// to node — the access pattern the paper's adaptive protocols exist
/// for, and the one that exercises every [`StepKind`] the checkpoint
/// encodes.
fn migratory_trace(nodes: u16, blocks: u64, rounds: u64) -> Trace {
    let mut trace = Trace::new();
    for round in 0..rounds {
        for block in 0..blocks {
            let node = NodeId::new(((round + block) % u64::from(nodes)) as u16);
            trace.push(MemRef::read(node, Addr::new(block * 64)));
            trace.push(MemRef::write(node, Addr::new(block * 64)));
        }
    }
    trace
}

/// Whether a simulation error is the kill-point firing (possibly
/// wrapped in a `BadCheckpoint` reason by the snapshot ledger).
fn sim_error_is_kill(e: &SimError) -> bool {
    e.to_string().contains(KILLED_MARKER)
}

fn sequential_sweep(args: &Args) -> SweepReport {
    let started = Instant::now();
    let cfg = DirectorySimConfig {
        nodes: 8,
        ..DirectorySimConfig::default()
    };
    let sim = DirectorySim::new(Protocol::Aggressive, &cfg);
    let trace = migratory_trace(8, 24, 64);
    let ckpt_path = Path::new("torture/seq.ckpt");
    let policy = CheckpointPolicy::new(200, ckpt_path);

    // Counting pass: fault-free, so this is also the reference result.
    let counter = ChaosStorage::new(StorageFaultPlan::reliable(args.seed));
    let reference = sim
        .run_resumable_on(&trace, 1, &policy, &counter)
        .unwrap_or_else(|e| {
            eprintln!("{BIN}: sequential counting pass failed: {e}");
            exit(2);
        });
    let ops_total = counter.stats().ops;

    let mut report = SweepReport {
        name: "sequential",
        ops_total,
        swept: 0,
        stride: args.stride,
        completed_before_kill: 0,
        recovered_current: 0,
        recovered_prev: 0,
        fresh_rerun: 0,
        unrecovered: Vec::new(),
        wal: None,
        wall_ms: 0,
    };

    for n in (0..ops_total).step_by(args.stride as usize) {
        if args.max_kills > 0 && report.swept >= args.max_kills {
            break;
        }
        report.swept += 1;
        // Vary the seed per index so crash draws (how much unsynced
        // tail survives, how many pending namespace ops wrote back)
        // explore different outcomes across the sweep.
        let storage = ChaosStorage::new(StorageFaultPlan::kill_at(
            args.seed.wrapping_add(n),
            n,
            KillScope::Machine,
        ));
        match sim.run_resumable_on(&trace, 1, &policy, &storage) {
            Ok(result) if !storage.stats().killed => {
                // The run finished under the kill threshold (can only
                // happen when op counts drift; sequential is
                // deterministic, so treat a drift as a finding).
                if result == reference {
                    report.completed_before_kill += 1;
                } else {
                    report
                        .unrecovered
                        .push(format!("kill {n}: uninterrupted result diverged"));
                }
                continue;
            }
            Ok(_) => {
                report
                    .unrecovered
                    .push(format!("kill {n}: run succeeded *after* the power cut"));
                continue;
            }
            Err(e) if sim_error_is_kill(&e) => {}
            Err(e) => {
                report
                    .unrecovered
                    .push(format!("kill {n}: non-kill failure: {e}"));
                continue;
            }
        }
        // Restart on the surviving durable state.
        let resumed = match Checkpoint::load_with_fallback_from(&storage, ckpt_path) {
            Ok(recovered) => {
                let outcome =
                    sim.resume_from_on(&trace, &recovered.checkpoint, Some(&policy), &storage);
                match recovered.generation {
                    SnapshotGeneration::Current => report.recovered_current += 1,
                    SnapshotGeneration::Previous => report.recovered_prev += 1,
                }
                outcome
            }
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // The cut predates the first durable publish: rerunning
                // from scratch is the correct (and reported) recovery.
                report.fresh_rerun += 1;
                sim.run_resumable_on(&trace, 1, &policy, &storage)
            }
            Err(e) => {
                report.unrecovered.push(format!(
                    "kill {n}: every snapshot generation unusable: {} ({e})",
                    e.class()
                ));
                continue;
            }
        };
        match resumed {
            Ok(result) if result == reference => {}
            Ok(_) => report.unrecovered.push(format!(
                "kill {n}: recovered result diverged from reference"
            )),
            Err(e) => report
                .unrecovered
                .push(format!("kill {n}: restart failed: {e}")),
        }
    }
    report.wall_ms = started.elapsed().as_millis();
    report
}

/// The live scenario's configuration, shared between the counting pass
/// and every swept kill: small enough that a full sweep stays in
/// minutes, big enough to cross several checkpoint boundaries per
/// shard.
fn live_config(seed: u64, storage: Arc<ChaosStorage>) -> LiveConfig {
    let mut cfg = LiveConfig::new(Protocol::Basic, 3, 2);
    cfg.seed = seed;
    // LocusRoute synthesizes in tens of milliseconds where the default
    // Mp3d takes seconds — and the sweep pays workload generation once
    // per swept op index.
    cfg.workload = mcc_workloads::Workload::LocusRoute;
    cfg.max_refs_per_client = 60;
    cfg.checkpoint_every = 16;
    // A killed shard's in-flight requests ride the retry path while
    // the replacement incarnation recovers; budget for a slow machine.
    cfg.chaos.max_retries = 256;
    cfg.chaos.max_total_backoff = u64::MAX;
    cfg.wal = Some(WalConfig::with_storage("torture-wal", storage));
    cfg
}

fn live_sweep(args: &Args) -> SweepReport {
    let started = Instant::now();

    // Counting pass. Thread scheduling makes the op count approximate
    // for later runs; indices past a given run's actual count simply
    // never fire and are recorded as completed_before_kill.
    let counter = Arc::new(ChaosStorage::new(StorageFaultPlan::reliable(args.seed)));
    let count_cfg = live_config(args.seed, Arc::clone(&counter));
    let reference = run_live(&count_cfg).unwrap_or_else(|e| {
        eprintln!("{BIN}: live counting pass failed: {e}");
        exit(2);
    });
    if !reference.ok() {
        eprintln!(
            "{BIN}: live counting pass degraded: clients {:?}, shards {:?}, violations {:?}",
            reference.client_errors(),
            reference.failed_shards(),
            reference.verify.violations
        );
        exit(2);
    }
    let ops_total = counter.stats().ops;

    let mut report = SweepReport {
        name: "live",
        ops_total,
        swept: 0,
        stride: args.stride,
        completed_before_kill: 0,
        recovered_current: 0,
        recovered_prev: 0,
        fresh_rerun: 0,
        unrecovered: Vec::new(),
        wal: Some(WalStats::default()),
        wall_ms: 0,
    };

    for n in (0..ops_total).step_by(args.stride as usize) {
        if args.max_kills > 0 && report.swept >= args.max_kills {
            break;
        }
        report.swept += 1;
        let storage = Arc::new(ChaosStorage::new(StorageFaultPlan::kill_at(
            args.seed.wrapping_add(n),
            n,
            KillScope::File,
        )));
        let cfg = live_config(args.seed, Arc::clone(&storage));
        let run = match run_live(&cfg) {
            Ok(run) => run,
            Err(e) => {
                report.unrecovered.push(format!("kill {n}: {e}"));
                continue;
            }
        };
        if !run.ok() {
            report.unrecovered.push(format!(
                "kill {n}: clients {:?}, shards {:?}, violations {:?}",
                run.client_errors(),
                run.failed_shards(),
                run.verify.violations
            ));
            continue;
        }
        // The service's own differential replay already verified the
        // run; also hold it to the reference's acked-work envelope.
        if run.ops() != run.applied() {
            report.unrecovered.push(format!(
                "kill {n}: acked {} != applied {}",
                run.ops(),
                run.applied()
            ));
            continue;
        }
        if storage.stats().killed {
            report.recovered_current += 1;
        } else {
            report.completed_before_kill += 1;
        }
        if let Some(w) = &mut report.wal {
            w.absorb(&run.wal());
        }
    }
    let _ = reference; // reference.ok() asserted above; per-run acked work varies with scheduling
    report.wall_ms = started.elapsed().as_millis();
    report
}

fn parse_args() -> Args {
    let mut scenario = Scenario::Both;
    let mut seed = 0xC0FF_EE00u64;
    let mut stride = 1u64;
    let mut max_kills = 0u64;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--scenario" => {
                scenario = match value("--scenario").as_str() {
                    "sequential" => Scenario::Sequential,
                    "live" => Scenario::Live,
                    "both" => Scenario::Both,
                    other => {
                        eprintln!("{BIN}: unknown scenario {other:?} (sequential|live|both)");
                        exit(2);
                    }
                }
            }
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--stride" => {
                stride = parse(&value("--stride"), "--stride");
                if stride == 0 {
                    eprintln!("{BIN}: --stride must be >= 1");
                    exit(2);
                }
            }
            "--max-kills" => max_kills = parse(&value("--max-kills"), "--max-kills"),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => {
                println!(
                    "{BIN} — kill-at-every-I/O storage torture harness\n\n\
                     Usage: {BIN} [--scenario sequential|live|both] [--seed N] \
                     [--stride N] [--max-kills N] [--out FILE]\n\
                     \n  --scenario S    which scenario to sweep (default both)\
                     \n  --seed N        fault/crash draw seed (default 0xC0FFEE00)\
                     \n  --stride N      kill every Nth op index instead of every one\
                     \n  --max-kills N   stop each sweep after N kills (0 = unbounded)\
                     \n  --out FILE      also write the JSON report to FILE\n\
                     \nFor every swept op index the scenario is re-run with a simulated\n\
                     power cut at exactly that I/O op, restarted on what the cut left\n\
                     durable, and required to reach the reference result bit-exactly or\n\
                     through an explicitly reported degrade. Exits non-zero if any index\n\
                     left an unrecovered state."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    Args {
        scenario,
        seed,
        stride,
        max_kills,
        out,
    }
}

fn parse<T: std::str::FromStr>(raw: &str, name: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{BIN}: invalid value {raw:?} for {name}");
        exit(2);
    })
}
