//! Prints the realized adaptive snooping transition tables (Figure 2 of
//! the paper) directly from the implemented state machine.

use mcc_snoop::{
    local_fill, local_write_hit, snoop_remote, BusRequest, SnoopProtocol, SnoopReply, SnoopState,
};
use mcc_stats::Table;

fn main() {
    let p = SnoopProtocol::Adaptive;

    let mut local = Table::new(["state", "event", "request", "reply", "new state"]);
    local.title("Figure 2 (top) — transitions on local cache events");
    let none = SnoopReply::NONE;
    let s = SnoopReply {
        shared: true,
        ..none
    };
    let m = SnoopReply {
        migratory: true,
        ..none
    };
    for (reply, label) in [(none, "¬M ∧ ¬S"), (m, "M"), (s, "S")] {
        local.row([
            "I",
            "Crm",
            "Brmr",
            label,
            &local_fill(p, false, reply).to_string(),
        ]);
    }
    for (reply, label) in [(none, "¬M"), (m, "M")] {
        local.row([
            "I",
            "Cwm",
            "Bwmr",
            label,
            &local_fill(p, true, reply).to_string(),
        ]);
    }
    for state in SnoopState::ALL {
        for (reply, label) in [(none, "¬M"), (m, "M")] {
            let (request, next) = local_write_hit(state, reply);
            let req = request.map_or(String::from("—"), |r| r.to_string());
            if request.is_none() && label == "M" {
                continue; // silent transitions ignore the reply
            }
            local.row([
                state.to_string(),
                "Cwh".to_string(),
                req,
                (if request.is_none() { "—" } else { label }).to_string(),
                next.to_string(),
            ]);
        }
    }
    println!("{local}");

    let mut bus = Table::new(["state", "request", "new state", "assert", "data"]);
    bus.title("Figure 2 (bottom) — transitions on bus requests");
    for state in SnoopState::ALL {
        for request in [
            BusRequest::ReadMiss,
            BusRequest::WriteMiss,
            BusRequest::Invalidate,
        ] {
            // Bir cannot reach exclusive-state copies.
            if request == BusRequest::Invalidate
                && !matches!(state, SnoopState::Shared | SnoopState::Shared2)
            {
                continue;
            }
            let (next, reply) = snoop_remote(p, state, request);
            let mut asserts = Vec::new();
            if reply.shared {
                asserts.push("S");
            }
            if reply.migratory {
                asserts.push("M");
            }
            bus.row([
                state.to_string(),
                request.to_string(),
                next.map_or(String::from("I"), |n| n.to_string()),
                if asserts.is_empty() {
                    "—".into()
                } else {
                    asserts.join("+")
                },
                if reply.provide_data {
                    "provide".into()
                } else {
                    "—".into()
                },
            ]);
        }
    }
    println!("{bus}");
}
