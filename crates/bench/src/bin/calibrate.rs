//! Quick calibration helper: one block-size section of Table 3 plus the
//! per-app reference counts, for tuning the workload mixes.

use mcc_bench::{block_size_sweep, render_message_rows, Scenario};
use mcc_trace::BlockSize;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("calibrate", "workload calibration snapshot");
    for w in Workload::ALL {
        let t = w.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let s = t.stats();
        println!(
            "{:<12} {:>9} refs  {:>5} KB footprint  {:>4.1}% writes",
            w.name(),
            s.refs,
            s.footprint_bytes / 1024,
            s.write_fraction() * 100.0
        );
    }
    println!();
    for bs in [BlockSize::B16, BlockSize::B256] {
        let rows = block_size_sweep(bs, &scenario);
        println!("{}", render_message_rows(&format!("{bs} blocks"), &rows));
    }
}
