//! A2 ablation: the §5 comparison the paper calls for — the adaptive
//! protocols versus the non-adaptive migrate-on-read-miss policy of the
//! Sequent Symmetry (model B) and MIT Alewife.

use mcc_bench::Scenario;
use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("ablation_pure_migrate", "A2 pure-migratory comparison");
    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        ..DirectorySimConfig::default()
    };
    let mut table = Table::new([
        "app",
        "conventional",
        "pure-migratory",
        "aggressive",
        "pure extra read misses %",
    ]);
    table.title("Total messages (thousands): adaptive vs always-migrate (§5)");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let conv = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
        let pure = DirectorySim::new(Protocol::PureMigratory, &cfg).run(&trace);
        let aggr = DirectorySim::new(Protocol::Aggressive, &cfg).run(&trace);
        let extra = mcc_stats::percent_reduction(
            pure.events.read_misses as f64,
            conv.events.read_misses as f64,
        );
        table.row([
            app.name().to_string(),
            mcc_stats::thousands(conv.total_messages()),
            mcc_stats::thousands(pure.total_messages()),
            mcc_stats::thousands(aggr.total_messages()),
            format!("{:.1}", -extra),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Thakkar's observation (§5): always migrating modified blocks inflates read\n\
             misses on non-migratory data; the adaptive protocols avoid this."
        );
    }
}
