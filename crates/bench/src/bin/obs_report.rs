//! Renders the observability artifacts of a run — the metrics JSON
//! written by `--metrics-out` and/or the event JSONL written by
//! `--events-out` — into human-readable summary tables: overall
//! totals, per-interval traffic and classification-flip deltas, the
//! messages-per-reference histogram, and per-event-type counts.
//!
//! Doubles as the CI validator: every JSONL line must parse back into
//! an event and the metrics JSON must round-trip through the registry
//! parser byte-identically, or the process exits non-zero.

use std::path::{Path, PathBuf};
use std::process::exit;

use mcc_obs::metrics::names;
use mcc_obs::{Event, Log2Histogram, Registry};
use mcc_stats::Table;

const BIN: &str = "obs_report";

/// The per-interval columns worth a delta table: traffic and the
/// classification churn the paper's detection rules produce.
const INTERVAL_COLUMNS: [&str; 5] = [
    names::CONTROL,
    names::DATA,
    names::PROMOTES,
    names::DEMOTES,
    names::INVALIDATIONS,
];

fn main() {
    let (metrics, events) = parse_args();
    if metrics.is_none() && events.is_none() {
        eprintln!("{BIN}: nothing to do — pass --metrics and/or --events (try --help)");
        exit(2);
    }
    if let Some(path) = &metrics {
        report_metrics(path);
    }
    if let Some(path) = &events {
        report_events(path);
    }
}

/// Loads, validates (round-trip), and renders a metrics JSON file.
fn report_metrics(path: &Path) {
    let text = read(path);
    let registry = Registry::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{BIN}: {}: invalid metrics JSON: {e}", path.display());
        exit(1);
    });
    // The registry must survive its own serializer byte-identically —
    // this is the CI round-trip check.
    let reserialized = registry.to_json();
    match Registry::from_json(&reserialized) {
        Ok(back) if back.to_json() == reserialized => {}
        _ => {
            eprintln!(
                "{BIN}: {}: metrics JSON does not round-trip",
                path.display()
            );
            exit(1);
        }
    }

    println!("== metrics: {} ==\n", path.display());
    let mut totals = registry.totals_table();
    totals.title("Totals");
    println!("{}", totals.to_text());

    let intervals = registry.intervals_table(&INTERVAL_COLUMNS);
    if !registry.intervals().is_empty() {
        let mut intervals = intervals;
        intervals.title("Per-interval deltas (cumulative record boundary per row)");
        println!("{}", intervals.to_text());
    }

    if let Some(hist) = registry.histogram(names::MESSAGES_PER_REF) {
        println!(
            "{}",
            histogram_table(names::MESSAGES_PER_REF, hist).to_text()
        );
    }
}

/// A `bucket,count` table for one log2 histogram.
fn histogram_table(name: &str, hist: &Log2Histogram) -> Table {
    let mut table = Table::new(["bucket", "count"]);
    table.title(format!("Histogram: {name} (count={})", hist.count()));
    let hi = hist.max_bucket().map_or(0, |i| i + 1);
    for (i, &count) in hist.buckets()[..hi].iter().enumerate() {
        table.row([Log2Histogram::bucket_label(i), count.to_string()]);
    }
    table
}

/// Parses every JSONL line (exiting non-zero on the first bad one) and
/// renders per-event-type counts plus promote/demote rule breakdowns.
fn report_events(path: &Path) {
    let text = read(path);
    let mut by_label: Vec<(&'static str, u64)> = Vec::new();
    let mut rules: Vec<(String, u64)> = Vec::new();
    let mut lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).unwrap_or_else(|e| {
            eprintln!(
                "{BIN}: {}:{}: bad event line: {e}",
                path.display(),
                lineno + 1
            );
            exit(1);
        });
        lines += 1;
        bump(&mut by_label, event.label());
        match event {
            Event::Promote { rule, .. } => {
                bump_string(&mut rules, format!("promote via {}", rule.label()));
            }
            Event::Demote { rule, .. } => {
                bump_string(&mut rules, format!("demote via {}", rule.label()));
            }
            _ => {}
        }
    }

    println!(
        "== events: {} ({lines} lines, all parsed) ==\n",
        path.display()
    );
    let mut table = Table::new(["event", "count"]);
    table.title("Event counts");
    for (label, count) in &by_label {
        table.row([(*label).to_string(), count.to_string()]);
    }
    println!("{}", table.to_text());

    if !rules.is_empty() {
        let mut table = Table::new(["classification flip", "count"]);
        table.title("Detection-rule breakdown (DESIGN.md §10 maps rules to the paper)");
        for (label, count) in &rules {
            table.row([label.clone(), count.to_string()]);
        }
        println!("{}", table.to_text());
    }
}

fn bump(counts: &mut Vec<(&'static str, u64)>, label: &'static str) {
    match counts.iter_mut().find(|(l, _)| *l == label) {
        Some((_, n)) => *n += 1,
        None => counts.push((label, 1)),
    }
}

fn bump_string(counts: &mut Vec<(String, u64)>, label: String) {
    match counts.iter_mut().find(|(l, _)| *l == label) {
        Some((_, n)) => *n += 1,
        None => counts.push((label, 1)),
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{BIN}: cannot read {}: {e}", path.display());
        exit(1);
    })
}

fn parse_args() -> (Option<PathBuf>, Option<PathBuf>) {
    let mut metrics = None;
    let mut events = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics"))),
            "--events" => events = Some(PathBuf::from(value("--events"))),
            "--help" | "-h" => {
                println!(
                    "{BIN} — render observability artifacts into summary tables\n\n\
                     Usage: {BIN} [--metrics FILE] [--events FILE]\n\
                     \n  --metrics FILE  metrics JSON written by a --metrics-out run; validated\
                     \n                  (parse + round-trip) and rendered as totals, per-interval\
                     \n                  deltas, and histograms\
                     \n  --events FILE   event JSONL written by a --events-out run; every line is\
                     \n                  parsed (non-zero exit on failure) and counted by type\n\
                     \nExit status: 0 on success, 1 when an artifact fails validation."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    (metrics, events)
}
