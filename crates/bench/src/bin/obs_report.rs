//! Renders the observability artifacts of a run — the metrics JSON
//! written by `--metrics-out` and/or the event JSONL written by
//! `--events-out` — into human-readable summary tables: overall
//! totals, per-interval traffic and classification-flip deltas, the
//! messages-per-reference histogram, and per-event-type counts.
//!
//! Doubles as the CI validator: every JSONL line must parse back into
//! an event and the metrics JSON must round-trip through the registry
//! parser byte-identically, or the process exits non-zero. With
//! `--modelcheck` it additionally validates a `modelcheck` JSON
//! summary: the document must parse, carry the expected shape, and
//! report zero violations (unless it was a `--planted-bug` fixture
//! run, where violations are the point). With `--live BASE` it
//! validates the artifact set of a `live` service run: every shard
//! journal must replay through the lockstep checker with zero
//! violations, every event line must parse (with exactly one `step`
//! event per journal entry), and the summary's retry/NACK/chaos
//! counters must reconcile with each other and with the chaos plan
//! the run was configured with. With `--telemetry FILE` it validates
//! a `*.telemetry.jsonl` snapshot stream: every line must parse, the
//! snapshot timestamps must be monotone with strictly increasing
//! sequence numbers, every embedded registry must round-trip through
//! the registry parser, and the counters must never move backwards.
//! With `--scale FILE` it validates a `BENCH_scale.json` summary from
//! the out-of-core `scale` sweep: gates passed, peak RSS bounded in
//! every representation cell, and no cell charging less than the
//! precise full map.

use std::path::{Path, PathBuf};
use std::process::exit;

use mcc_obs::metrics::names;
use mcc_obs::{Event, Json, Log2Histogram, Registry};
use mcc_stats::Table;
use mcc_trace::Trace;

const BIN: &str = "obs_report";

/// The per-interval columns worth a delta table: traffic and the
/// classification churn the paper's detection rules produce.
const INTERVAL_COLUMNS: [&str; 5] = [
    names::CONTROL,
    names::DATA,
    names::PROMOTES,
    names::DEMOTES,
    names::INVALIDATIONS,
];

fn main() {
    let args = parse_args();
    if args.metrics.is_none()
        && args.events.is_none()
        && args.modelcheck.is_none()
        && args.live.is_none()
        && args.telemetry.is_none()
        && args.scale.is_none()
    {
        eprintln!(
            "{BIN}: nothing to do — pass --metrics, --events, --modelcheck, --live, \
             --telemetry, and/or --scale"
        );
        exit(2);
    }
    if let Some(path) = &args.metrics {
        report_metrics(path);
    }
    if let Some(path) = &args.events {
        report_events(path);
    }
    if let Some(path) = &args.modelcheck {
        report_modelcheck(path);
    }
    if let Some(base) = &args.live {
        report_live(base);
    }
    if let Some(path) = &args.telemetry {
        report_telemetry(path);
    }
    if let Some(path) = &args.scale {
        report_scale(path);
    }
}

/// Loads, validates (round-trip), and renders a metrics JSON file.
fn report_metrics(path: &Path) {
    let text = read(path);
    let registry = Registry::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{BIN}: {}: invalid metrics JSON: {e}", path.display());
        exit(1);
    });
    // The registry must survive its own serializer byte-identically —
    // this is the CI round-trip check.
    let reserialized = registry.to_json();
    match Registry::from_json(&reserialized) {
        Ok(back) if back.to_json() == reserialized => {}
        _ => {
            eprintln!(
                "{BIN}: {}: metrics JSON does not round-trip",
                path.display()
            );
            exit(1);
        }
    }

    println!("== metrics: {} ==\n", path.display());
    let mut totals = registry.totals_table();
    totals.title("Totals");
    println!("{}", totals.to_text());

    let intervals = registry.intervals_table(&INTERVAL_COLUMNS);
    if !registry.intervals().is_empty() {
        let mut intervals = intervals;
        intervals.title("Per-interval deltas (cumulative record boundary per row)");
        println!("{}", intervals.to_text());
    }

    if let Some(hist) = registry.histogram(names::MESSAGES_PER_REF) {
        println!(
            "{}",
            histogram_table(names::MESSAGES_PER_REF, hist).to_text()
        );
    }
}

/// A `bucket,count` table for one log2 histogram.
fn histogram_table(name: &str, hist: &Log2Histogram) -> Table {
    let mut table = Table::new(["bucket", "count"]);
    table.title(format!("Histogram: {name} (count={})", hist.count()));
    let hi = hist.max_bucket().map_or(0, |i| i + 1);
    for (i, &count) in hist.buckets()[..hi].iter().enumerate() {
        table.row([Log2Histogram::bucket_label(i), count.to_string()]);
    }
    table
}

/// Parses every JSONL line (exiting non-zero on the first bad one) and
/// renders per-event-type counts plus promote/demote rule breakdowns.
fn report_events(path: &Path) {
    let text = read(path);
    let mut by_label: Vec<(&'static str, u64)> = Vec::new();
    let mut rules: Vec<(String, u64)> = Vec::new();
    let mut lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).unwrap_or_else(|e| {
            eprintln!(
                "{BIN}: {}:{}: bad event line: {e}",
                path.display(),
                lineno + 1
            );
            exit(1);
        });
        lines += 1;
        bump(&mut by_label, event.label());
        match event {
            Event::Promote { rule, .. } => {
                bump_string(&mut rules, format!("promote via {}", rule.label()));
            }
            Event::Demote { rule, .. } => {
                bump_string(&mut rules, format!("demote via {}", rule.label()));
            }
            _ => {}
        }
    }

    println!(
        "== events: {} ({lines} lines, all parsed) ==\n",
        path.display()
    );
    let mut table = Table::new(["event", "count"]);
    table.title("Event counts");
    for (label, count) in &by_label {
        table.row([(*label).to_string(), count.to_string()]);
    }
    println!("{}", table.to_text());

    if !rules.is_empty() {
        let mut table = Table::new(["classification flip", "count"]);
        table.title("Detection-rule breakdown (DESIGN.md §10 maps rules to the paper)");
        for (label, count) in &rules {
            table.row([label.clone(), count.to_string()]);
        }
        println!("{}", table.to_text());
    }
}

/// Validates a `modelcheck` JSON summary (parse + shape + zero
/// violations outside fixture mode) and renders the coverage table.
fn report_modelcheck(path: &Path) {
    let text = read(path);
    let fail = |why: &str| -> ! {
        eprintln!("{BIN}: {}: bad modelcheck summary: {why}", path.display());
        exit(1);
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("invalid JSON: {e}")),
    };
    if doc.get("tool").and_then(Json::as_str) != Some("modelcheck") {
        fail("missing or wrong \"tool\" field");
    }
    let planted = match doc.get("planted_bug") {
        Some(Json::Bool(b)) => *b,
        _ => fail("missing \"planted_bug\" boolean"),
    };
    let Some(exhaustive) = doc.get("exhaustive").and_then(Json::as_arr) else {
        fail("missing \"exhaustive\" array");
    };
    let Some(counterexamples) = doc.get("counterexamples").and_then(Json::as_arr) else {
        fail("missing \"counterexamples\" array");
    };

    println!("== modelcheck: {} ==\n", path.display());
    let mut violations = 0u64;
    let mut table = Table::new(["protocol", "states", "complete", "violations"]);
    table.title("Exhaustive coverage");
    for row in exhaustive {
        let (Some(protocol), Some(states), Some(complete), Some(v)) = (
            row.get("protocol").and_then(Json::as_str),
            row.get("states").and_then(Json::as_u64),
            row.get("complete"),
            row.get("violations").and_then(Json::as_u64),
        ) else {
            fail("exhaustive row missing protocol/states/complete/violations");
        };
        if !matches!(complete, Json::Bool(true)) {
            fail(&format!("exhaustive sweep of {protocol} was truncated"));
        }
        violations += v;
        table.row([
            protocol.to_string(),
            states.to_string(),
            "yes".to_string(),
            v.to_string(),
        ]);
    }
    if !exhaustive.is_empty() {
        println!("{}", table.to_text());
    }

    match doc.get("fuzz") {
        Some(Json::Null) | None => {}
        Some(fuzz) => {
            let (Some(cases), Some(refs), Some(v)) = (
                fuzz.get("cases").and_then(Json::as_u64),
                fuzz.get("refs").and_then(Json::as_u64),
                fuzz.get("violations").and_then(Json::as_u64),
            ) else {
                fail("fuzz summary missing cases/refs/violations");
            };
            violations += v;
            println!("fuzz: {cases} cases, {refs} refs, {v} violations\n");
        }
    }

    if counterexamples.len() as u64 != violations {
        fail(&format!(
            "{violations} violations reported but {} counterexamples listed",
            counterexamples.len()
        ));
    }
    for cx in counterexamples {
        let (Some(protocol), Some(invariant), Some(len)) = (
            cx.get("protocol").and_then(Json::as_str),
            cx.get("invariant").and_then(Json::as_str),
            cx.get("len").and_then(Json::as_u64),
        ) else {
            fail("counterexample row missing protocol/invariant/len");
        };
        println!("counterexample: [{protocol}] {invariant}, {len} records");
    }
    if planted {
        if violations == 0 {
            fail("planted-bug fixture run found nothing");
        }
        println!("planted-bug fixture: bug found, as required");
    } else if violations > 0 {
        fail(&format!("{violations} violations"));
    }
}

/// Validates the artifact set of a `live` service run (see the `live`
/// binary): summary kv + per-shard journal traces + per-shard event
/// JSONL under a common base path.
fn report_live(base: &Path) {
    let fail = |why: String| -> ! {
        eprintln!("{BIN}: live run {}: {why}", base.display());
        exit(1);
    };
    let summary_path = mcc_live::summary_path(base);
    let kv: std::collections::HashMap<String, String> =
        mcc_stats::parse_kv_lines(&read(&summary_path))
            .into_iter()
            .collect();
    let field = |key: &str| -> u64 {
        kv.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(format!("summary missing numeric field {key:?}")))
    };
    let protocol = mcc_check::parse_protocol(
        kv.get("protocol")
            .unwrap_or_else(|| fail("summary missing protocol".into())),
    )
    .unwrap_or_else(|e| fail(e));
    let nodes = field("nodes") as u16;
    let shards = field("shards");

    // Differential replay: every shard journal through the lockstep
    // engine/specification checker, zero violations tolerated.
    let mut applied = 0u64;
    let mut journal_writes = 0u64;
    for shard in 0..shards as u32 {
        let journal_path = mcc_live::journal_path(base, shard);
        let trace = std::fs::File::open(&journal_path)
            .map_err(|e| format!("cannot open {}: {e}", journal_path.display()))
            .and_then(|f| {
                Trace::read_from(f).map_err(|e| format!("{}: {e}", journal_path.display()))
            })
            .unwrap_or_else(|e| fail(e));
        applied += trace.len() as u64;
        journal_writes += trace.iter().filter(|r| r.op.is_write()).count() as u64;
        let checker = mcc_check::Checker::new(&mcc_check::CheckerConfig::new(protocol, nodes));
        if let Err(v) = checker.run(&trace) {
            fail(format!("shard {shard} journal replay: {v}"));
        }

        // Event stream: every line parses; exactly one step event per
        // journal entry (the commit protocol makes this exact even
        // across crash-restarts).
        let events_path = mcc_live::events_path(base, shard);
        let text = read(&events_path);
        let mut steps = 0u64;
        for (lineno, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
            let event = Event::from_json(line).unwrap_or_else(|e| {
                fail(format!(
                    "{}:{}: bad event line: {e}",
                    events_path.display(),
                    lineno + 1
                ))
            });
            if matches!(event, Event::Step { .. }) {
                steps += 1;
            }
        }
        if steps != trace.len() as u64 {
            fail(format!(
                "shard {shard}: {steps} step events vs {} journal entries",
                trace.len()
            ));
        }
    }

    // Counter reconciliation within the summary and against the plan.
    if applied != field("applied") {
        fail(format!(
            "journals hold {applied} entries, summary claims {}",
            field("applied")
        ));
    }
    if journal_writes != field("journal_writes") {
        fail(format!(
            "journals hold {journal_writes} writes, summary claims {}",
            field("journal_writes")
        ));
    }
    if field("acked_writes") > journal_writes {
        fail(format!(
            "{} acknowledged writes exceed {journal_writes} journaled — lost-write bug",
            field("acked_writes")
        ));
    }
    let healthy = field("clients_ok") == 1 && field("shards_failed") == 0;
    if healthy {
        if field("ops_acked") != applied {
            fail(format!(
                "healthy run but {} acks vs {applied} applies",
                field("ops_acked")
            ));
        }
        if field("acked_writes") != journal_writes {
            fail(format!(
                "healthy run but {} acked writes vs {journal_writes} journaled",
                field("acked_writes")
            ));
        }
    }
    let chaos_configured = field("drop_ppm") > 0
        || field("nack_ppm") > 0
        || field("delay_ppm") > 0
        || field("duplicate_ppm") > 0
        || field("resp_drop_ppm") > 0
        || field("resp_delay_ppm") > 0
        || field("resp_duplicate_ppm") > 0;
    if !chaos_configured {
        // The chaos-layer counters and NACK draws are deterministic in
        // the plan, so a fault-free plan must show zero. (Retries and
        // timeouts are NOT in this list: deadline expiries are
        // scheduling-dependent and legitimate on a loaded machine even
        // over a reliable wire — the identity check below covers them.)
        for key in [
            "nacks",
            "nacks_sent",
            "req_dropped",
            "req_delayed",
            "req_duplicated",
            "rep_dropped",
            "rep_delayed",
            "rep_duplicated",
        ] {
            if field(key) != 0 {
                fail(format!(
                    "fault-free plan but {key} = {} — phantom faults",
                    field(key)
                ));
            }
        }
    }
    if field("client_errors") == 0 && field("retries") != field("nacks") + field("timeouts") {
        fail(format!(
            "retry identity broken: {} retries vs {} nacks + {} timeouts",
            field("retries"),
            field("nacks"),
            field("timeouts")
        ));
    }
    if field("req_dropped") > field("req_sent") || field("rep_dropped") > field("rep_sent") {
        fail("more messages dropped than sent".into());
    }
    if field("verify_violations") != 0 {
        fail(format!(
            "{} differential-replay violations recorded at run time",
            field("verify_violations")
        ));
    }
    if field("ok") != 1 {
        fail("run recorded ok = 0".into());
    }

    println!(
        "== live: {} ==\n\n{shards} shard journals replayed ({applied} entries, \
         {journal_writes} writes): zero violations; counters reconcile.\n",
        base.display()
    );
}

/// Validates a `*.telemetry.jsonl` snapshot stream written by the
/// live service's periodic [`SnapshotWriter`](mcc_obs::SnapshotWriter):
/// every line parses, the envelope fields are monotone (strictly
/// increasing `seq`, non-decreasing `ts_ms`/`uptime_ms`), every
/// embedded registry round-trips through its own serializer, and no
/// counter ever moves backwards between consecutive snapshots.
fn report_telemetry(path: &Path) {
    let text = read(path);
    let fail = |lineno: usize, why: String| -> ! {
        eprintln!("{BIN}: {}:{}: {why}", path.display(), lineno);
        exit(1);
    };
    let mut prev: Option<(u64, u64, u64, Registry)> = None;
    let mut lines = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let doc =
            Json::parse(line).unwrap_or_else(|e| fail(lineno, format!("bad snapshot JSON: {e}")));
        let env = |key: &str| -> u64 {
            doc.get(key)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| fail(lineno, format!("missing envelope field {key:?}")))
        };
        let (ts_ms, seq, uptime_ms) = (env("ts_ms"), env("seq"), env("uptime_ms"));
        let registry_text = doc
            .get("registry")
            .unwrap_or_else(|| fail(lineno, "missing registry".into()))
            .to_string();
        let registry = Registry::from_json(&registry_text)
            .unwrap_or_else(|e| fail(lineno, format!("bad embedded registry: {e}")));
        // Round-trip: the registry must survive its own serializer.
        let reserialized = registry.to_json();
        match Registry::from_json(&reserialized) {
            Ok(back) if back.to_json() == reserialized => {}
            _ => fail(lineno, "embedded registry does not round-trip".into()),
        }
        if let Some((p_ts, p_seq, p_up, p_reg)) = &prev {
            if seq <= *p_seq {
                fail(lineno, format!("seq {seq} not after previous {p_seq}"));
            }
            if ts_ms < *p_ts {
                fail(lineno, format!("ts_ms {ts_ms} went backwards from {p_ts}"));
            }
            if uptime_ms < *p_up {
                fail(
                    lineno,
                    format!("uptime_ms {uptime_ms} went backwards from {p_up}"),
                );
            }
            // Counters are cumulative; a snapshot stream from one run
            // must never show one shrinking.
            for (name, &value) in registry.counters() {
                let before = p_reg.counter(name);
                if value < before {
                    fail(
                        lineno,
                        format!("counter {name:?} moved backwards: {before} -> {value}"),
                    );
                }
            }
        }
        prev = Some((ts_ms, seq, uptime_ms, registry));
        lines += 1;
    }
    let Some((_, seq, uptime_ms, registry)) = prev else {
        eprintln!("{BIN}: {}: no snapshot lines", path.display());
        exit(1);
    };
    println!(
        "== telemetry: {} ==\n\n{lines} snapshots validated (final seq {seq}, \
         +{:.1}s uptime, {} counters, {} gauges, {} histograms): envelope monotone, \
         registries round-trip, counters non-decreasing.\n",
        path.display(),
        uptime_ms as f64 / 1e3,
        registry.counters().len(),
        registry.gauges().len(),
        registry.histograms().len(),
    );
}

fn bump(counts: &mut Vec<(&'static str, u64)>, label: &'static str) {
    match counts.iter_mut().find(|(l, _)| *l == label) {
        Some((_, n)) => *n += 1,
        None => counts.push((label, 1)),
    }
}

fn bump_string(counts: &mut Vec<(String, u64)>, label: String) {
    match counts.iter_mut().find(|(l, _)| *l == label) {
        Some((_, n)) => *n += 1,
        None => counts.push((label, 1)),
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{BIN}: cannot read {}: {e}", path.display());
        exit(1);
    })
}

/// Validates a `BENCH_scale.json` summary written by the `scale`
/// binary: the document must parse, both correctness gates must have
/// passed, every representation cell must be present with a bounded
/// peak RSS, and no cell may report *less* traffic than the precise
/// full map (imprecision can only over-invalidate).
fn report_scale(path: &Path) {
    let text = read(path);
    let fail = |why: &str| -> ! {
        eprintln!("{BIN}: {}: bad scale summary: {why}", path.display());
        exit(1);
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("invalid JSON: {e}")),
    };
    if doc.get("bench").and_then(Json::as_str) != Some("scale") {
        fail("missing or wrong \"bench\" field");
    }
    for gate in ["parity_gate", "resume_gate"] {
        if doc.get(gate).and_then(Json::as_str) != Some("ok") {
            fail(&format!("{gate} did not pass"));
        }
    }
    let (Some(refs), Some(nodes)) = (
        doc.get("refs").and_then(Json::as_u64),
        doc.get("nodes").and_then(Json::as_u64),
    ) else {
        fail("missing refs/nodes");
    };
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        fail("missing \"cells\" array");
    };
    if cells.is_empty() {
        fail("no representation cells");
    }
    println!(
        "== scale: {} ({refs} refs, {nodes} nodes) ==\n",
        path.display()
    );
    let mut table = Table::new(["directory", "refs/s", "peak MiB", "messages", "bounded"]);
    table.title("Representation sweep");
    let mut full_map_messages = None;
    for cell in cells {
        let (Some(directory), Some(rps), Some(hwm), Some(messages), Some(bounded)) = (
            cell.get("directory").and_then(Json::as_str),
            cell.get("refs_per_sec").and_then(Json::as_u64),
            cell.get("vm_hwm_bytes").and_then(Json::as_u64),
            cell.get("total_messages").and_then(Json::as_u64),
            cell.get("rss_bounded"),
        ) else {
            fail("cell missing directory/refs_per_sec/vm_hwm_bytes/total_messages/rss_bounded");
        };
        if !matches!(bounded, Json::Bool(true)) {
            fail(&format!("{directory}: peak RSS exceeded the limit"));
        }
        if rps == 0 {
            fail(&format!("{directory}: zero throughput"));
        }
        if directory == "full-map" {
            full_map_messages = Some(messages);
        }
        table.row([
            directory.to_string(),
            rps.to_string(),
            (hwm / (1024 * 1024)).to_string(),
            messages.to_string(),
            "yes".to_string(),
        ]);
    }
    println!("{}", table.to_text());
    let Some(baseline) = full_map_messages else {
        fail("no full-map baseline cell");
    };
    for cell in cells {
        let directory = cell.get("directory").and_then(Json::as_str).unwrap_or("?");
        let messages = cell
            .get("total_messages")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if messages < baseline {
            fail(&format!(
                "{directory} reports {messages} messages, below the full map's {baseline} — \
                 an imprecise representation can never charge less"
            ));
        }
    }
}

struct Args {
    metrics: Option<PathBuf>,
    events: Option<PathBuf>,
    modelcheck: Option<PathBuf>,
    live: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    scale: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out = Args {
        metrics: None,
        events: None,
        modelcheck: None,
        live: None,
        telemetry: None,
        scale: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--metrics" => out.metrics = Some(PathBuf::from(value("--metrics"))),
            "--events" => out.events = Some(PathBuf::from(value("--events"))),
            "--modelcheck" => out.modelcheck = Some(PathBuf::from(value("--modelcheck"))),
            "--live" => out.live = Some(PathBuf::from(value("--live"))),
            "--telemetry" => out.telemetry = Some(PathBuf::from(value("--telemetry"))),
            "--scale" => out.scale = Some(PathBuf::from(value("--scale"))),
            "--help" | "-h" => {
                println!(
                    "{BIN} — render observability artifacts into summary tables\n\n\
                     Usage: {BIN} [--metrics FILE] [--events FILE] [--modelcheck FILE] \
                     [--live BASE] [--telemetry FILE]\n\
                     \n  --metrics FILE     metrics JSON written by a --metrics-out run; validated\
                     \n                     (parse + round-trip) and rendered as totals,\
                     \n                     per-interval deltas, and histograms\
                     \n  --events FILE      event JSONL written by a --events-out run; every line\
                     \n                     is parsed (non-zero exit on failure), counted by type\
                     \n  --modelcheck FILE  JSON summary printed by the modelcheck binary;\
                     \n                     validated (parse + shape + zero violations outside\
                     \n                     --planted-bug fixture runs) and rendered\
                     \n  --live BASE        artifact set written by the live binary's --out BASE;\
                     \n                     every shard journal is replayed through the lockstep\
                     \n                     checker and all counters must reconcile\
                     \n  --telemetry FILE   *.telemetry.jsonl snapshot stream from a live run;\
                     \n                     every line must parse with monotone envelope fields,\
                     \n                     round-tripping registries, non-decreasing counters\
                     \n  --scale FILE       BENCH_scale.json summary from the scale binary; both\
                     \n                     correctness gates must have passed, every cell's peak\
                     \n                     RSS must be bounded, and no representation may charge\
                     \n                     less than the full map\n\
                     \nExit status: 0 on success, 1 when an artifact fails validation."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    out
}
