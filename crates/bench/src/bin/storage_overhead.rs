//! §2.2 hardware-cost analysis: directory-entry bits for the
//! conventional protocol and the adaptive extensions, by machine size.

use mcc_core::{AdaptivePolicy, DirEntryLayout};
use mcc_stats::Table;

fn main() {
    let mut table = Table::new([
        "nodes",
        "conventional bits",
        "basic bits",
        "conservative bits",
        "extra vs conventional",
        "overhead @16B block",
    ]);
    table.title("Directory-entry storage (full-map presence vector)");
    for nodes in [4u16, 8, 16, 32, 64] {
        let conv = DirEntryLayout::conventional(nodes);
        let basic = DirEntryLayout::adaptive(nodes, AdaptivePolicy::basic());
        let conservative = DirEntryLayout::adaptive(nodes, AdaptivePolicy::conservative());
        table.row([
            nodes.to_string(),
            conv.total_bits().to_string(),
            basic.total_bits().to_string(),
            conservative.total_bits().to_string(),
            format!("+{}", conservative.total_bits() - conv.total_bits()),
            format!("{:.1}%", conservative.overhead_fraction(16) * 100.0),
        ]);
    }
    println!("{table}");
    println!("§2.2: the adaptive state is a few bits per entry — \"simple enough to");
    println!("build into hardware cache controllers without a large cost increase\".");
    println!();
    println!("Per-entry field breakdown at 16 nodes:");
    println!("  conventional: {}", DirEntryLayout::conventional(16));
    println!(
        "  basic:        {}",
        DirEntryLayout::adaptive(16, AdaptivePolicy::basic())
    );
    println!(
        "  conservative: {}",
        DirEntryLayout::adaptive(16, AdaptivePolicy::conservative())
    );
}
