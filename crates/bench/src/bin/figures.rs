//! Trend "figures": the paper's Table 2/3 trends rendered as ASCII bar
//! charts — reduction versus cache size and versus block size, per
//! application.

use mcc_bench::{block_size_sweep, cache_size_sweep, Scenario, BLOCK_SIZES, CACHE_SIZES_KB};
use mcc_stats::BarChart;
use mcc_workloads::Workload;

fn main() {
    let scenario = Scenario::from_env("figures", "trend charts for Tables 2 and 3");

    println!("Aggressive-protocol message reduction (%) by per-node cache size\n");
    let by_cache: Vec<_> = CACHE_SIZES_KB
        .iter()
        .map(|&kb| (kb, cache_size_sweep(kb, &scenario)))
        .collect();
    for (i, app) in Workload::ALL.iter().enumerate() {
        let mut chart = BarChart::new(app.name(), 40);
        for (kb, rows) in &by_cache {
            chart.bar(format!("{kb} KB"), rows[i].pct(3));
        }
        println!("{chart}");
    }

    println!("Aggressive-protocol message reduction (%) by block size (capacity-free)\n");
    let by_block: Vec<_> = BLOCK_SIZES
        .iter()
        .map(|&bs| (bs, block_size_sweep(bs, &scenario)))
        .collect();
    for (i, app) in Workload::ALL.iter().enumerate() {
        let mut chart = BarChart::new(app.name(), 40);
        for (bs, rows) in &by_block {
            chart.bar(bs.to_string(), rows[i].pct(3));
        }
        println!("{chart}");
    }
}
