//! Crash-safe sweep supervisor: runs a manifest of simulation cells,
//! checkpointing as it goes, and skips already-completed cells when
//! restarted — so a sweep that takes hours survives being killed at any
//! point and never repeats finished work.
//!
//! The manifest is a text file with one cell per line:
//!
//! ```text
//! # protocol workload [fault_ppm]
//! conventional mp3d
//! aggressive water
//! basic cholesky 20000
//! ```
//!
//! For each cell the supervisor keeps two files in the state directory:
//! `<cell>.ckpt`, the crash-safe in-flight snapshot (rewritten every
//! `--checkpoint-every` records and deleted on completion), and
//! `<cell>.result`, the finished counters in `key value` lines. A cell
//! with a `.result` file is skipped on restart; a cell with only a
//! `.ckpt` resumes from the snapshot and replays just the unprocessed
//! tail. A snapshot that fails to load or no longer matches the cell
//! (different flags, edited manifest) degrades gracefully: the
//! supervisor says so, discards it, and reruns the cell from scratch.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcc_bench::{try_run_protocol_traced, ObsOptions, RunOptions};
use mcc_core::{
    CheckpointPolicy, DirectorySimConfig, FaultPlan, Protocol, SimError, SimResult,
    SnapshotGeneration,
};
use mcc_obs::{SnapshotWriter, Telemetry, TelemetryServer};
use mcc_stats::kv_lines;
use mcc_workloads::{Workload, WorkloadParams};

const BIN: &str = "supervisor";

struct Args {
    manifest: PathBuf,
    state: PathBuf,
    nodes: u16,
    scale: f64,
    seed: u64,
    shards: usize,
    every: u64,
    events_ring: usize,
    obs: bool,
    telemetry: Option<String>,
}

/// The sweep's live telemetry: cell progress a watcher (`mcc-top`, or
/// a bare `curl`) can scrape mid-sweep, plus periodic
/// `sweep.telemetry.jsonl` snapshots in the state directory.
struct SweepTelemetry {
    _server: TelemetryServer,
    writer: Option<SnapshotWriter>,
    completed: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
    cell_index: Arc<AtomicI64>,
    cells_total: Arc<AtomicI64>,
}

impl SweepTelemetry {
    fn start(addr: &str, state: &Path, total: usize) -> SweepTelemetry {
        let plane = Arc::new(Telemetry::new());
        let server = TelemetryServer::serve(Arc::clone(&plane), addr).unwrap_or_else(|e| {
            eprintln!("{BIN}: telemetry endpoint {addr}: {e}");
            exit(2);
        });
        eprintln!(
            "{BIN}: telemetry endpoint at http://{}/metrics",
            server.addr()
        );
        let snap_path = state.join("sweep.telemetry.jsonl");
        let writer =
            match SnapshotWriter::start(Arc::clone(&plane), &snap_path, Duration::from_millis(500))
            {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("{BIN}: telemetry snapshots {}: {e}", snap_path.display());
                    None
                }
            };
        let tele = SweepTelemetry {
            _server: server,
            writer,
            completed: plane.counter("sweep.cells_completed"),
            failed: plane.counter("sweep.cells_failed"),
            skipped: plane.counter("sweep.cells_skipped"),
            cell_index: plane.gauge("sweep.cell_index"),
            cells_total: plane.gauge("sweep.cells_total"),
        };
        tele.cells_total.store(total as i64, Ordering::Relaxed);
        tele
    }

    fn finish(mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = writer.finish();
        }
    }
}

#[derive(Clone, Debug)]
struct Cell {
    protocol: Protocol,
    workload: Workload,
    fault_ppm: u32,
}

impl Cell {
    /// Stable per-cell file stem: `basic-mp3d` or `basic-mp3d-f20000`.
    fn key(&self) -> String {
        let mut key = format!(
            "{}-{}",
            self.protocol,
            self.workload.name().to_lowercase().replace(' ', "-")
        );
        if self.fault_ppm > 0 {
            key.push_str(&format!("-f{}", self.fault_ppm));
        }
        key
    }
}

fn main() {
    let args = parse_args();
    let cells = parse_manifest(&args.manifest);
    if cells.is_empty() {
        eprintln!("{BIN}: manifest {} has no cells", args.manifest.display());
        exit(2);
    }
    if let Err(e) = fs::create_dir_all(&args.state) {
        eprintln!("{BIN}: cannot create {}: {e}", args.state.display());
        exit(2);
    }

    let total = cells.len();
    let telemetry = args
        .telemetry
        .as_deref()
        .map(|addr| SweepTelemetry::start(addr, &args.state, total));
    let mut completed = 0usize;
    let mut failed = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let key = cell.key();
        let result_path = args.state.join(format!("{key}.result"));
        let ckpt_path = args.state.join(format!("{key}.ckpt"));
        if let Some(t) = &telemetry {
            t.cell_index.store((i + 1) as i64, Ordering::Relaxed);
        }
        if result_path.exists() {
            // Say *which* file justified the skip — a restarted sweep
            // that silently skips cells is indistinguishable from one
            // that lost them.
            println!(
                "[{}/{total}] {key}: already complete ({} exists), skipping",
                i + 1,
                result_path.display()
            );
            completed += 1;
            if let Some(t) = &telemetry {
                t.skipped.fetch_add(1, Ordering::Relaxed);
                t.completed.fetch_add(1, Ordering::Relaxed);
            }
            continue;
        }
        // Per-cell heartbeat: what is running right now and from where,
        // so a watcher of a long sweep always knows where it is.
        if ckpt_path.exists() {
            println!(
                "[{}/{total}] {key}: running (resuming from snapshot {})",
                i + 1,
                ckpt_path.display()
            );
        } else {
            println!("[{}/{total}] {key}: running (fresh)", i + 1);
        }
        let started = std::time::Instant::now();
        match run_cell(&args, cell, &ckpt_path) {
            Ok((result, recovered_from)) => {
                if let Err(e) = write_result(&result_path, cell, &result, recovered_from) {
                    eprintln!("{BIN}: writing {}: {e}", result_path.display());
                    failed += 1;
                    if let Some(t) = &telemetry {
                        t.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                // The snapshot is now redundant; the .result file is the
                // completion marker restarts key off.
                fs::remove_file(&ckpt_path).ok();
                println!(
                    "[{}/{total}] {key}: done in {:.1}s ({} messages over {} references)",
                    i + 1,
                    started.elapsed().as_secs_f64(),
                    result.total_messages(),
                    result.events.refs()
                );
                completed += 1;
                if let Some(t) = &telemetry {
                    t.completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => {
                eprintln!("[{}/{total}] {key}: FAILED: {e}", i + 1);
                failed += 1;
                if let Some(t) = &telemetry {
                    t.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    if let Some(t) = telemetry {
        t.finish();
    }
    println!("{completed}/{total} cells complete, {failed} failed");
    exit(i32::from(failed > 0));
}

/// Runs one cell, resuming from its snapshot when one exists. A
/// snapshot the run rejects (corrupt, or taken under different flags)
/// first falls back to its rotated `.prev` generation inside the
/// loader; when both generations are unusable the cell reruns from
/// scratch with a notice naming the error class and whether the
/// rotated generation was tried — supervision must degrade, not wedge.
/// Returns the result plus which snapshot generation the cell actually
/// recovered from (`None` = ran fresh), recorded in its `.result`.
fn run_cell(
    args: &Args,
    cell: &Cell,
    ckpt_path: &Path,
) -> Result<(SimResult, Option<SnapshotGeneration>), SimError> {
    let cfg = DirectorySimConfig {
        nodes: args.nodes,
        ..DirectorySimConfig::default()
    };
    let faults = (cell.fault_ppm > 0).then(|| FaultPlan::uniform(args.seed, cell.fault_ppm));
    let params = WorkloadParams::new(args.nodes)
        .scale(args.scale)
        .seed(args.seed);
    let trace = cell.workload.generate(&params);
    let policy = CheckpointPolicy::new(args.every, ckpt_path);
    let fresh = RunOptions {
        shards: args.shards,
        checkpoint: Some(policy.clone()),
        resume: None,
        faults,
        // With --obs set, each cell leaves its event stream and metrics
        // registry next to its .result file; with --events-ring set, a
        // failing cell renders the flight recorder (last-K events + the
        // offending block's classification timeline) onto stderr.
        obs: ObsOptions {
            events_out: args
                .obs
                .then(|| args.state.join(format!("{}.events.jsonl", cell.key()))),
            metrics_out: args
                .obs
                .then(|| args.state.join(format!("{}.metrics.json", cell.key()))),
            events_ring: args.events_ring,
        },
    };
    if !ckpt_path.exists() {
        return try_run_protocol_traced(cell.protocol, &cfg, &trace, &fresh);
    }
    let resume = RunOptions {
        resume: Some(ckpt_path.to_path_buf()),
        ..fresh.clone()
    };
    match try_run_protocol_traced(cell.protocol, &cfg, &trace, &resume) {
        Err(SimError::BadCheckpoint { reason }) => {
            eprintln!(
                "{BIN}: {}: snapshot unusable ({reason}); rerunning the cell from scratch",
                cell.key()
            );
            fs::remove_file(ckpt_path).ok();
            try_run_protocol_traced(cell.protocol, &cfg, &trace, &fresh)
        }
        other => other,
    }
}

/// Writes the cell's counters atomically (temp file + rename), so a
/// kill mid-write can never fabricate a completed cell.
fn write_result(
    path: &Path,
    cell: &Cell,
    result: &SimResult,
    recovered_from: Option<SnapshotGeneration>,
) -> std::io::Result<()> {
    let c = result.message_count();
    let recovered_from = recovered_from.map_or_else(|| "fresh".to_string(), |g| g.to_string());
    let body = kv_lines([
        ("protocol", cell.protocol.to_string()),
        ("workload", cell.workload.name().to_string()),
        ("fault_ppm", cell.fault_ppm.to_string()),
        ("references", result.events.refs().to_string()),
        ("messages_control", c.control.to_string()),
        ("messages_data", c.data.to_string()),
        ("messages_total", result.total_messages().to_string()),
        ("migrations", result.events.migrations.to_string()),
        ("invalidations", result.events.invalidations.to_string()),
        ("recovered_from", recovered_from),
    ]);
    let tmp = path.with_extension("result.tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, path)
}

fn parse_manifest(path: &Path) -> Vec<Cell> {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{BIN}: cannot read manifest {}: {e}", path.display());
        exit(2);
    });
    let mut cells = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let bad = |what: &str| -> ! {
            eprintln!(
                "{BIN}: manifest line {}: {what} (expected: <protocol> <workload> [fault_ppm])",
                lineno + 1
            );
            exit(2);
        };
        let protocol = match fields.next().map(parse_protocol) {
            Some(Some(p)) => p,
            _ => bad("unknown protocol"),
        };
        let workload = match fields.next().map(str::parse::<Workload>) {
            Some(Ok(w)) => w,
            _ => bad("unknown workload"),
        };
        let fault_ppm = match fields.next() {
            None => 0,
            Some(raw) => match raw.parse() {
                Ok(ppm) => ppm,
                Err(_) => bad("invalid fault_ppm"),
            },
        };
        if fields.next().is_some() {
            bad("trailing fields");
        }
        cells.push(Cell {
            protocol,
            workload,
            fault_ppm,
        });
    }
    cells
}

/// The protocol names [`Protocol`]'s `Display` prints.
fn parse_protocol(name: &str) -> Option<Protocol> {
    match name {
        "conventional" => Some(Protocol::Conventional),
        "conservative" => Some(Protocol::Conservative),
        "basic" => Some(Protocol::Basic),
        "aggressive" => Some(Protocol::Aggressive),
        "pure-migratory" => Some(Protocol::PureMigratory),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut manifest = None;
    let mut state = None;
    let mut nodes = 16u16;
    let mut scale = mcc_bench::DEFAULT_SCALE;
    let mut seed = 0u64;
    let mut shards = 1usize;
    let mut every = 10_000u64;
    let mut events_ring = 0usize;
    let mut obs = false;
    let mut telemetry = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest"))),
            "--state" => state = Some(PathBuf::from(value("--state"))),
            "--nodes" => nodes = parse(&value("--nodes"), "--nodes"),
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--shards" => shards = parse(&value("--shards"), "--shards"),
            "--checkpoint-every" => {
                every = parse(&value("--checkpoint-every"), "--checkpoint-every")
            }
            "--events-ring" => events_ring = parse(&value("--events-ring"), "--events-ring"),
            "--obs" => obs = true,
            "--telemetry" => telemetry = Some(value("--telemetry")),
            "--help" | "-h" => {
                println!(
                    "{BIN} — crash-safe sweep supervisor\n\n\
                     Usage: {BIN} --manifest FILE --state DIR [--nodes N] [--scale X] \
                     [--seed N] [--shards K] [--checkpoint-every N] [--events-ring K] [--obs] \
                     [--telemetry ADDR]\n\
                     \n  --manifest FILE       sweep cells, one '<protocol> <workload> [fault_ppm]' per line\
                     \n  --state DIR           where per-cell .ckpt/.result files live\
                     \n  --nodes N             simulated machine size (default 16)\
                     \n  --scale X             workload work multiplier (default {})\
                     \n  --seed N              workload RNG seed (default 0)\
                     \n  --shards K            address shards for the parallel engine (default 1)\
                     \n  --checkpoint-every N  snapshot cadence in records (default 10000)\
                     \n  --events-ring K       keep the last K protocol events per cell and dump\
                     \n                        them (flight recorder) when a cell fails\
                     \n  --obs                 write per-cell <cell>.events.jsonl and\
                     \n                        <cell>.metrics.json into the state directory\
                     \n  --telemetry ADDR      serve sweep progress over HTTP at ADDR (port 0 =\
                     \n                        any free port) and append sweep.telemetry.jsonl\
                     \n                        snapshots into the state directory",
                    mcc_bench::DEFAULT_SCALE
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    let (Some(manifest), Some(state)) = (manifest, state) else {
        eprintln!("{BIN}: --manifest and --state are required (try --help)");
        exit(2);
    };
    Args {
        manifest,
        state,
        nodes,
        scale,
        seed,
        shards,
        every,
        events_ring,
        obs,
        telemetry,
    }
}

fn parse<T: std::str::FromStr>(raw: &str, name: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{BIN}: invalid value {raw:?} for {name}");
        exit(2);
    })
}
