//! Phase-change stress (extension): the paper notes the SPLASH programs
//! show "very little dynamic reclassification" (§5), so its data cannot
//! separate the protocols on *adaptation speed* — the first §2 family
//! axis. This workload alternates migratory and read-shared epochs on
//! the same objects, forcing reclassification at every flip.

use mcc_bench::Scenario;
use mcc_core::{AdaptivePolicy, DirectorySim, DirectorySimConfig, Protocol};
use mcc_stats::Table;
use mcc_trace::Addr;
use mcc_workloads::{interleave_streams, GenCtx, PhasedObjects, Region};

fn main() {
    let scenario = Scenario::from_env("ablation_phases", "phase-change reclassification stress");
    let region = PhasedObjects {
        base: Addr::new(0),
        objects: 512,
        object_bytes: 64,
        phase_pairs: ((8.0 * scenario.scale.max(0.1) / 0.1).round() as u64).max(2),
        visits_per_migratory_phase: 8,
        reads_per_shared_phase: 12,
        reads_per_visit: 3,
        writes_per_visit: 2,
    };
    let mut ctx = GenCtx::new(scenario.nodes, scenario.seed);
    let trace = interleave_streams(region.streams(&mut ctx), &mut ctx);
    println!("phase-change trace: {}", trace.stats());
    println!();

    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        ..DirectorySimConfig::default()
    };
    let base = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
    let mut table = Table::new([
        "protocol",
        "messages",
        "saved %",
        "migrations",
        "reclassifications (+/-)",
    ]);
    table.title("Alternating migratory / read-shared epochs");
    table.row([
        "conventional".to_string(),
        base.total_messages().to_string(),
        "0.0".to_string(),
        "0".to_string(),
        "-".to_string(),
    ]);
    let mut protocols = vec![
        Protocol::Conservative,
        Protocol::Basic,
        Protocol::Aggressive,
        Protocol::PureMigratory,
        Protocol::Custom(AdaptivePolicy::stenstrom()),
    ];
    for events in [3u8, 4] {
        protocols.push(Protocol::Custom(AdaptivePolicy {
            initial_migratory: false,
            events_required: events,
            remember_when_uncached: true,
            demote_on_write_miss: false,
        }));
    }
    for protocol in protocols {
        let r = DirectorySim::new(protocol, &cfg).run(&trace);
        table.row([
            protocol.to_string(),
            r.total_messages().to_string(),
            format!("{:.1}", r.percent_reduction_vs(&base)),
            r.events.migrations.to_string(),
            format!("{}+/{}-", r.events.became_migratory, r.events.became_other),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Adaptation speed now matters: one-event protocols re-learn quickly at every\n\
             flip while deep hysteresis (3-4 events) forfeits much of the win. With\n\
             clean epoch boundaries the non-adaptive migrate-always policy has no\n\
             detection lag at all — its weakness needs readers returning to data they\n\
             recently wrote (see ablation_pure_migrate / the read_mostly example)."
        );
    }
}
