//! Fault-injection resilience study (extension): the paper's protocols
//! on an unreliable interconnect that drops, duplicates, delays, and
//! NACKs messages at a configurable rate.
//!
//! Failed attempts are retried with exponential backoff; the wasted
//! wire traffic is tallied separately from the delivered protocol
//! traffic, so two claims are visible at once: (1) faults never change
//! what the protocol delivers — the delivered column is identical down
//! the fault-rate axis — and (2) the adaptive protocols' message
//! savings survive, and even compound, on a lossy fabric, because every
//! transaction a migration avoids is also a transaction that can no
//! longer fail.
//!
//! Deterministic: the same `--seed` reproduces every fault bit-exactly.

use mcc_bench::Scenario;
use mcc_core::{DirectorySim, DirectorySimConfig, FaultPlan, Protocol};
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

/// Fault rates swept, in parts per million per message class.
const RATES_PPM: [u32; 4] = [0, 1_000, 10_000, 50_000];

fn main() {
    let scenario = Scenario::from_env("ablation_faults", "unreliable-interconnect study");
    let mut table = Table::new([
        "app",
        "fault ppm",
        "protocol",
        "delivered msgs",
        "overhead msgs",
        "nacks",
        "retries",
        "backoff units",
    ]);
    table.title("Unreliable interconnect: delivered traffic vs fault-recovery overhead");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let cfg = DirectorySimConfig {
            nodes: scenario.nodes,
            ..DirectorySimConfig::default()
        };
        for ppm in RATES_PPM {
            let mut conventional_delivered = None;
            for protocol in [
                Protocol::Conventional,
                Protocol::Conservative,
                Protocol::Basic,
                Protocol::Aggressive,
            ] {
                let result = DirectorySim::new(protocol, &cfg)
                    .with_faults(FaultPlan::uniform(scenario.seed, ppm))
                    .try_run(&trace)
                    .unwrap_or_else(|e| {
                        eprintln!("{app} under {protocol} at {ppm} ppm failed: {e}");
                        std::process::exit(1);
                    });
                let delivered = result.messages.delivered().total();
                let adaptive_beats_conventional =
                    *conventional_delivered.get_or_insert(delivered) >= delivered;
                assert!(
                    adaptive_beats_conventional,
                    "{app} at {ppm} ppm: {protocol} delivered more than conventional"
                );
                table.row([
                    app.name().to_string(),
                    ppm.to_string(),
                    protocol.to_string(),
                    mcc_stats::thousands(delivered),
                    mcc_stats::thousands(result.messages.overhead().total()),
                    result.events.nacks.to_string(),
                    result.events.retries.to_string(),
                    result.events.backoff_units.to_string(),
                ]);
            }
        }
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Delivered traffic is invariant down the fault-rate axis: retries repeat\n\
             transactions verbatim, so faults only add overhead. The adaptive protocols\n\
             keep their full message reduction — fewer transactions also means fewer\n\
             opportunities for the fabric to fail one."
        );
    }
}
