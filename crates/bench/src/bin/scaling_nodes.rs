//! Machine-size scalability study (an extension beyond the paper's
//! fixed sixteen-processor configuration): how the adaptive advantage
//! changes from 4 to 64 nodes.
//!
//! More nodes mean more distinct consecutive invalidators (migratory
//! hand-offs stay detectable) but also wider read-sharing fan-out, so
//! the study answers whether the 16-node conclusions generalize.

use mcc_bench::{run_protocol, Scenario};
use mcc_core::{DirectorySimConfig, Protocol};
use mcc_stats::{BarChart, Table};
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("scaling_nodes", "node-count scalability study");
    let mut table = Table::new(["app", "4", "8", "16", "32", "64"]);
    table.title("Aggressive reduction (%) by machine size (16B blocks, capacity-free)");
    let mut per_app: Vec<(Workload, Vec<f64>)> = Vec::new();
    for app in Workload::ALL {
        let mut pcts = Vec::new();
        for nodes in [4u16, 8, 16, 32, 64] {
            let cfg = DirectorySimConfig {
                nodes,
                ..DirectorySimConfig::default()
            };
            let trace = app.generate(
                &WorkloadParams::new(nodes)
                    .scale(scenario.scale)
                    .seed(scenario.seed),
            );
            let conv = run_protocol(Protocol::Conventional, &cfg, &trace, scenario.shards);
            let aggr = run_protocol(Protocol::Aggressive, &cfg, &trace, scenario.shards);
            pcts.push(aggr.percent_reduction_vs(&conv));
        }
        per_app.push((app, pcts));
    }
    for (app, pcts) in &per_app {
        let mut row = vec![app.name().to_string()];
        row.extend(pcts.iter().map(|p| format!("{p:.1}")));
        table.row(row);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
        return;
    }
    println!("{table}");
    for (app, pcts) in &per_app {
        let mut chart = BarChart::new(app.name(), 40);
        for (nodes, pct) in [4, 8, 16, 32, 64].iter().zip(pcts) {
            chart.bar(format!("{nodes} nodes"), *pct);
        }
        println!("{chart}");
    }
}
