//! Model-checking and fuzzing driver for the protocol family.
//!
//! Runs the `mcc-check` exhaustive bounded explorer over every
//! standard protocol point, then a seeded differential fuzzing
//! campaign, and prints a machine-readable JSON summary on stdout
//! (validated by `obs_report --modelcheck`). Counterexamples are
//! minimized, written as replayable `.mcct` traces under
//! `--repro-dir`, and rendered with the flight recorder's
//! classification timeline on stderr.
//!
//! Exit status: 0 when every check passed, 1 on any violation (or, in
//! `--planted-bug` mode, when the planted bug was *not* found), 2 on
//! usage errors.

use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

use mcc_check::{
    explore, fuzz, parse_directory_repr, parse_protocol, protocol_points, protocol_slug, Checker,
    CheckerConfig, Counterexample, ExploreConfig, FuzzConfig,
};
use mcc_core::Protocol;
use mcc_obs::{lock_sink, shared, FlightRecorder, Json, DEFAULT_RING};
use mcc_trace::Trace;

const BIN: &str = "modelcheck";

struct Args {
    nodes: u16,
    blocks: u64,
    max_len: usize,
    max_states: u64,
    seed: u64,
    fuzz_cases: u64,
    fuzz_len: usize,
    time_budget: Option<Duration>,
    repro_dir: Option<PathBuf>,
    planted_bug: bool,
    replay: Option<PathBuf>,
    protocol: Option<Protocol>,
    fast_engine: bool,
    directory: mcc_core::DirectoryRepr,
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.replay {
        exit(replay(path, &args));
    }

    let deadline = args.time_budget.map(|b| Instant::now() + b);
    let protocols: Vec<Protocol> = match args.protocol {
        Some(p) => vec![p],
        None => protocol_points(),
    };

    let mut counterexamples: Vec<Counterexample> = Vec::new();
    let mut exhaustive_rows = Vec::new();
    if args.max_len > 0 && !args.planted_bug {
        for &protocol in &protocols {
            let mut config = ExploreConfig::new(protocol);
            config.nodes = args.nodes;
            config.blocks = args.blocks;
            config.max_len = args.max_len;
            config.max_states = args.max_states;
            config.time_budget = deadline.map(remaining);
            config.fast_engine = args.fast_engine;
            config.directory = args.directory;
            let out = explore(&config);
            eprintln!(
                "{BIN}: exhaustive {} nodes={} blocks={} L={}: {} states, complete={}, \
                 violations={}",
                protocol_slug(protocol),
                args.nodes,
                args.blocks,
                args.max_len,
                out.states,
                out.complete,
                u64::from(out.violation.is_some()),
            );
            exhaustive_rows.push(Json::Obj(vec![
                ("protocol".into(), Json::Str(protocol_slug(protocol))),
                ("states".into(), Json::u64(out.states)),
                ("complete".into(), Json::Bool(out.complete)),
                (
                    "violations".into(),
                    Json::u64(u64::from(out.violation.is_some())),
                ),
            ]));
            counterexamples.extend(out.violation);
        }
    }

    let mut fuzz_row = Json::Null;
    if args.fuzz_cases > 0 {
        let mut config = FuzzConfig::new(args.seed);
        config.protocols = protocols.clone();
        config.cases = args.fuzz_cases;
        config.trace_len = args.fuzz_len;
        config.nodes = args.nodes.max(2);
        config.blocks = args.blocks.max(2);
        config.broken_demotion_spec = args.planted_bug;
        config.fast_engine = args.fast_engine;
        config.directory = args.directory;
        config.time_budget = deadline.map(remaining);
        if args.planted_bug {
            // The planted bug only shows against an adaptive spec.
            config.protocols.retain(|p| p.policy().is_some());
        }
        let report = fuzz(&config);
        eprintln!(
            "{BIN}: fuzz seed={} cases={} refs={} complete={} violations={}",
            args.seed,
            report.cases_run,
            report.refs_checked,
            report.complete,
            report.counterexamples.len()
        );
        fuzz_row = Json::Obj(vec![
            ("seed".into(), Json::u64(args.seed)),
            ("cases".into(), Json::u64(report.cases_run)),
            ("refs".into(), Json::u64(report.refs_checked)),
            ("complete".into(), Json::Bool(report.complete)),
            (
                "violations".into(),
                Json::u64(report.counterexamples.len() as u64),
            ),
        ]);
        counterexamples.extend(report.counterexamples);
    }

    let mut cx_rows = Vec::new();
    for cx in &counterexamples {
        let repro = write_repro(cx, args.repro_dir.as_deref());
        render(cx, &args);
        cx_rows.push(Json::Obj(vec![
            ("protocol".into(), Json::Str(protocol_slug(cx.protocol))),
            (
                "invariant".into(),
                Json::Str(cx.violation.invariant.label().into()),
            ),
            ("step".into(), Json::u64(cx.violation.step)),
            ("len".into(), Json::u64(cx.trace.len() as u64)),
            (
                "repro".into(),
                repro.map_or(Json::Null, |p| Json::Str(p.display().to_string())),
            ),
        ]));
    }

    let summary = Json::Obj(vec![
        ("tool".into(), Json::Str(BIN.into())),
        ("planted_bug".into(), Json::Bool(args.planted_bug)),
        ("fast_engine".into(), Json::Bool(args.fast_engine)),
        ("directory".into(), Json::Str(args.directory.to_string())),
        ("exhaustive".into(), Json::Arr(exhaustive_rows)),
        ("fuzz".into(), fuzz_row),
        ("counterexamples".into(), Json::Arr(cx_rows)),
    ]);
    println!("{summary}");

    let failed = if args.planted_bug {
        // Fixture mode inverts success: the fuzzer must find the bug.
        counterexamples.is_empty()
    } else {
        !counterexamples.is_empty()
    };
    exit(i32::from(failed));
}

fn remaining(deadline: Instant) -> Duration {
    deadline.saturating_duration_since(Instant::now())
}

/// Re-checks a previously written `.mcct` counterexample and renders
/// the flight-recorder context. Exits 0 when the trace still fails
/// (the repro reproduces), 1 when it passes cleanly.
fn replay(path: &std::path::Path, args: &Args) -> i32 {
    let protocol = args.protocol.unwrap_or_else(|| {
        eprintln!("{BIN}: --replay needs --protocol NAME");
        exit(2);
    });
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("{BIN}: cannot open {}: {e}", path.display());
        exit(2);
    });
    let trace = Trace::read_from(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("{BIN}: {}: not a valid trace: {e}", path.display());
        exit(2);
    });
    let mut config = CheckerConfig::new(protocol, args.nodes);
    config.spec_demotion_enabled = !args.planted_bug;
    config.fast_engine = args.fast_engine;
    config.directory = args.directory;
    match Checker::new(&config).run(&trace) {
        Err(violation) => {
            let cx = Counterexample {
                protocol,
                trace,
                violation,
            };
            eprintln!("{BIN}: replay of {} still fails:", path.display());
            render(&cx, args);
            0
        }
        Ok(_) => {
            eprintln!(
                "{BIN}: replay of {} passes — the counterexample no longer reproduces",
                path.display()
            );
            1
        }
    }
}

/// Writes a minimized counterexample trace under `dir`, returning its
/// path.
fn write_repro(cx: &Counterexample, dir: Option<&std::path::Path>) -> Option<PathBuf> {
    let dir = dir?;
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("{BIN}: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!(
        "{}-{}-step{}.mcct",
        protocol_slug(cx.protocol),
        cx.violation.invariant.label(),
        cx.violation.step
    ));
    let result =
        std::fs::File::create(&path).and_then(|f| cx.trace.write_to(std::io::BufWriter::new(f)));
    match result {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("{BIN}: writing {}: {e}", path.display());
            None
        }
    }
}

/// Renders a counterexample on stderr: the violation, the minimized
/// trace, and the flight recorder's last-events dump plus the
/// offending block's classification timeline (from re-running the
/// trace through a plain engine with a recorder sink).
fn render(cx: &Counterexample, args: &Args) {
    eprintln!(
        "{BIN}: counterexample [{}] {}",
        protocol_slug(cx.protocol),
        cx.violation
    );
    for (i, r) in cx.trace.iter().enumerate() {
        eprintln!("{BIN}:   [{i}] {r}");
    }
    let config = mcc_core::DirectorySimConfig {
        nodes: args.nodes,
        block_size: mcc_check::CHECK_BLOCK_SIZE,
        placement: mcc_core::PlacementPolicy::RoundRobin,
        ..mcc_core::DirectorySimConfig::default()
    };
    let (recorder, handle) = shared(FlightRecorder::new(DEFAULT_RING));
    let outcome =
        mcc_core::DirectorySim::new(cx.protocol, &config).try_run_with_sink(&cx.trace, handle);
    if let Err(e) = outcome {
        eprintln!("{BIN}: engine replay itself failed: {e}");
    }
    eprint!("{}", lock_sink(&recorder).report(cx.violation.block));
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 2,
        blocks: 1,
        max_len: 8,
        max_states: u64::MAX,
        seed: 0xc0c0_a75e,
        fuzz_cases: 8,
        fuzz_len: 400,
        time_budget: None,
        repro_dir: None,
        planted_bug: false,
        replay: None,
        protocol: None,
        fast_engine: false,
        directory: mcc_core::DirectoryRepr::FullMap,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2);
            })
        };
        fn num<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{BIN}: {name}: bad value {raw:?}");
                exit(2);
            })
        }
        match arg.as_str() {
            "--nodes" => args.nodes = num("--nodes", &value("--nodes")),
            "--blocks" => args.blocks = num("--blocks", &value("--blocks")),
            "--max-len" => args.max_len = num("--max-len", &value("--max-len")),
            "--max-states" => args.max_states = num("--max-states", &value("--max-states")),
            "--seed" => args.seed = num("--seed", &value("--seed")),
            "--fuzz-cases" => args.fuzz_cases = num("--fuzz-cases", &value("--fuzz-cases")),
            "--fuzz-len" => args.fuzz_len = num("--fuzz-len", &value("--fuzz-len")),
            "--time-budget" => {
                args.time_budget = Some(Duration::from_secs(num(
                    "--time-budget",
                    &value("--time-budget"),
                )));
            }
            "--repro-dir" => args.repro_dir = Some(PathBuf::from(value("--repro-dir"))),
            "--planted-bug" => args.planted_bug = true,
            "--fast-engine" => args.fast_engine = true,
            "--directory" => {
                let raw = value("--directory");
                args.directory = parse_directory_repr(&raw).unwrap_or_else(|e| {
                    eprintln!("{BIN}: --directory: {e}");
                    exit(2);
                });
            }
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            "--protocol" => {
                let raw = value("--protocol");
                args.protocol = Some(parse_protocol(&raw).unwrap_or_else(|e| {
                    eprintln!("{BIN}: --protocol: {e}");
                    exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "{BIN} — exhaustive protocol model checker + differential fuzzer\n\n\
                     Usage: {BIN} [options]\n\
                     \n  --nodes N         nodes in the checked configuration (default 2)\
                     \n  --blocks B        blocks in the checked configuration (default 1)\
                     \n  --max-len L       exhaustive trace-length bound (default 8; 0 skips)\
                     \n  --max-states S    cap on states per protocol point (default unlimited)\
                     \n  --seed S          fuzzer master seed (default 0xc0c0a75e)\
                     \n  --fuzz-cases N    fuzz traces to generate (default 8; 0 skips)\
                     \n  --fuzz-len L      references per fuzz trace (default 400)\
                     \n  --time-budget S   overall wall-clock budget in seconds\
                     \n  --repro-dir DIR   write minimized counterexamples as .mcct here\
                     \n  --planted-bug     fixture mode: check against the known-broken\
                     \n                    no-demotion spec; exits 0 iff the bug is FOUND\
                     \n  --fast-engine     check the fast hot-path engine instead of the\
                     \n                    reference DirectoryEngine\
                     \n  --directory R     directory representation to check (full-map,\
                     \n                    dirNb, cvR, dirNcvR; default full-map)\
                     \n  --replay FILE     re-check a .mcct counterexample (needs --protocol)\
                     \n  --protocol NAME   restrict to one protocol point (basic, adaptive,\
                     \n                    aggressive, conventional, pure-migratory,\
                     \n                    custom=i,e,r,d or a custom-i*-e*-r*-d* slug)\n\
                     \nPrints a JSON summary on stdout (validate with obs_report --modelcheck).\
                     \nExit status: 0 all checks passed, 1 violations found, 2 usage error."
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown argument {other:?} (try --help)");
                exit(2);
            }
        }
    }
    args
}
