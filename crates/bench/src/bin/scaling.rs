//! Speedup-vs-shards study for the address-sharded parallel engine.
//!
//! Drives a Figure-2-style synthetic migratory workload — thousands of
//! lock-protected records handed from node to node — through the basic
//! adaptive protocol sequentially and at K ∈ {1, 2, 4, 8} shards,
//! reporting the median wall time and speedup of each configuration.
//! Every sharded run's totals are checked against the sequential result
//! before its timing is reported: a fast-but-wrong engine fails loudly.
//!
//! Wall-clock speedup depends on the host: with four or more free cores
//! the 4-shard run is expected to land at 2× or better over sequential;
//! on a saturated or single-core machine the ratios compress toward 1
//! (the partition-and-merge overhead is a few percent).

use mcc_bench::{timing::measure, Scenario};
use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_stats::{speedup, BarChart, Table};
use mcc_trace::Trace;
use mcc_workloads::{interleave_streams, GenCtx, MigratoryObjects, Region};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 5;

/// A pure migratory region, as in the paper's Figure 2 microbenchmark:
/// each record is read then written by one node at a time, with
/// ownership rotating on every visit.
fn figure2_trace(scenario: &Scenario) -> Trace {
    let region = MigratoryObjects {
        base: mcc_trace::Addr::new(0),
        objects: 2048,
        object_bytes: 64,
        visits_per_object: ((4000.0 * scenario.scale) as u64).max(1),
        reads_per_visit: 2,
        writes_per_visit: 1,
        burst: 3,
        rotate: false,
        stride: 1,
    };
    let mut ctx = GenCtx::new(scenario.nodes, scenario.seed);
    let streams = region.streams(&mut ctx);
    interleave_streams(streams, &mut ctx)
}

fn main() {
    let scenario = Scenario::from_env("scaling", "sharded-engine speedup study");
    let trace = figure2_trace(&scenario);
    let sim = DirectorySim::new(Protocol::Basic, &DirectorySimConfig::default());

    eprintln!(
        "{} refs over {} nodes, {} samples per configuration",
        trace.len(),
        scenario.nodes,
        SAMPLES
    );

    let sequential = sim.run(&trace);
    let base_seconds = measure(SAMPLES, || sim.run(&trace));

    let mut table = Table::new(["shards", "seconds", "speedup"]);
    table.title("Sharded-engine wall time (basic protocol, Figure-2 workload)");
    table.row([
        "seq".to_string(),
        format!("{base_seconds:.4}"),
        "1.00".to_string(),
    ]);

    let mut chart = BarChart::new("speedup vs sequential", 40);
    chart.bar("seq", 1.0);
    for shards in SHARD_COUNTS {
        let result = sim.run_sharded(&trace, shards);
        assert_eq!(
            result, sequential,
            "sharded result diverged at K={shards}: refusing to time a wrong engine"
        );
        let seconds = measure(SAMPLES, || sim.run_sharded(&trace, shards));
        let s = speedup(base_seconds, seconds);
        table.row([
            shards.to_string(),
            format!("{seconds:.4}"),
            format!("{s:.2}"),
        ]);
        chart.bar(format!("K={shards}"), s);
    }

    if scenario.csv {
        print!("{}", table.to_csv());
        return;
    }
    println!("{table}");
    println!("{chart}");
}
