//! §5 off-line bound: how close do the on-line adaptive protocols come
//! to an oracle that knows the future and issues read-with-ownership
//! ("load with intent to modify") on exactly the right read misses?

use mcc_bench::Scenario;
use mcc_core::{
    migrate_hints, DirectoryEngine, DirectorySim, DirectorySimConfig, PlacementPolicy, Protocol,
};
use mcc_placement::PagePlacement;
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("ablation_oracle", "§5 off-line RWITM bound");
    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        ..DirectorySimConfig::default()
    };
    let mut table = Table::new([
        "app",
        "conventional",
        "aggressive %",
        "oracle %",
        "gap (pp)",
    ]);
    table.title("Messages (thousands) and reduction vs conventional: on-line vs off-line");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let conv = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
        let aggr = DirectorySim::new(Protocol::Aggressive, &cfg).run(&trace);

        // The oracle runs on the conventional substrate with perfect
        // per-read-miss hints, using the same profiled placement.
        let placement = PagePlacement::profiled(&trace, scenario.nodes);
        let oracle_cfg = DirectorySimConfig {
            placement: PlacementPolicy::Profiled,
            ..cfg
        };
        let mut engine = DirectoryEngine::new(Protocol::Conventional, &oracle_cfg, placement);
        let hints = migrate_hints(&trace, cfg.block_size);
        for (r, &hint) in trace.iter().zip(&hints) {
            engine.step_hinted(*r, hint);
        }
        let oracle_total = engine.messages().total();
        let aggr_pct = aggr.percent_reduction_vs(&conv);
        let oracle_pct =
            mcc_stats::percent_reduction(conv.total_messages() as f64, oracle_total as f64);
        table.row([
            app.name().to_string(),
            mcc_stats::thousands(conv.total_messages()),
            format!("{aggr_pct:.1}"),
            format!("{oracle_pct:.1}"),
            format!("{:.1}", oracle_pct - aggr_pct),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "The gap column is what off-line knowledge (compiler analysis, programmer\n\
             annotations, prefetch-exclusive) could still buy over the paper's best\n\
             on-line protocol — the §5 discussion, quantified."
        );
    }
}
