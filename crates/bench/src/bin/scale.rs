//! Out-of-core scale sweep: drives a generator-backed stream — no
//! materialized trace, no trace file — through every directory
//! representation, reporting throughput and resident memory per cell
//! and gating on a hard RSS bound.
//!
//! The full configuration (`--full`) is the tentpole claim: one
//! billion references over 1024 nodes in bounded memory. The default
//! is the CI smoke shape (10 M references, 256 nodes) so the same
//! binary runs on every push under a `ulimit` harness.
//!
//! Before the sweep, two cheap gates run on a sampled prefix of the
//! same generator:
//!
//! * **parity** — the sequential stream run must equal the K-sharded
//!   one bit-exactly;
//! * **resume** — a checkpoint cut mid-prefix and resumed through a
//!   re-created stream must reach the same result.
//!
//! Usage: `scale [--full] [--refs N] [--nodes N] [--shards K]
//! [--protocol P] [--directory R]... [--prefix N] [--rss-limit-mb M]
//! [--out PATH]`

use std::process::exit;
use std::time::Instant;

use mcc_check::{parse_directory_repr, parse_protocol};
use mcc_core::{
    DirectoryRepr, DirectorySim, DirectorySimConfig, EngineKind, PlacementPolicy, Protocol,
};
use mcc_obs::Json;
use mcc_trace::{Addr, MemRef, NodeId, TraceStream};

const BIN: &str = "scale";

/// The synthetic scale workload: a pure function of the record index,
/// so a billion-reference stream costs no memory and re-creating it
/// for a resume is free. Epochs of eight references mix the paper's
/// sharing patterns:
///
/// * a migratory object handed to a new owner every epoch (read then
///   write — the hand-off the adaptive protocols detect);
/// * a hot read-shared block whose reader rotates across the whole
///   machine, with a periodic write that fans invalidations out over
///   the accumulated copy set — the access that separates the
///   directory representations;
/// * private per-node traffic.
///
/// The address footprint is bounded (migratory ring + hot set +
/// per-node scratch), so resident memory is a function of nodes and
/// blocks, never of reference count — which is exactly the property
/// the RSS gate pins.
fn scale_record(i: u64, nodes: u64) -> MemRef {
    let epoch = i / 8;
    let node = |x: u64| NodeId::new((x % nodes) as u16);
    match i % 8 {
        // Migratory ring: 256 objects, each read+written by one node
        // per epoch and handed to the next.
        0 => MemRef::read(node(epoch), Addr::new((epoch % 256) * 16)),
        1 => MemRef::write(node(epoch), Addr::new((epoch % 256) * 16)),
        // Hot read-shared blocks: four blocks, rotating readers. Once
        // the copy set has had time to span the machine, a write
        // forces the full invalidation fan-out.
        2..=4 => {
            let hot = Addr::new((1 << 20) + (i % 4) * 16);
            MemRef::read(node(epoch.wrapping_mul(7) + i), hot)
        }
        5 => {
            let hot = Addr::new((1 << 20) + (epoch % 4) * 16);
            // Write every 31 epochs: enough reading for a wide copy
            // set, not enough to cover the machine — the partially
            // covered fan-out is where the representations' charges
            // genuinely differ (a fully covered one charges the same
            // under every representation).
            if epoch % 31 == 30 {
                MemRef::write(node(epoch), hot)
            } else {
                MemRef::read(node(epoch.wrapping_mul(11) + 3), hot)
            }
        }
        // Private scratch: each node reads and occasionally writes its
        // own page.
        _ => {
            let owner = (epoch + i) % nodes;
            let addr = Addr::new((1 << 24) + owner * 4096 + (i % 8) * 16);
            if i.is_multiple_of(3) {
                MemRef::write(node(owner), addr)
            } else {
                MemRef::read(node(owner), addr)
            }
        }
    }
}

/// Resident-set figures from `/proc/self/status`, in bytes:
/// `(current VmRSS, peak VmHWM)`. Zeros on platforms without procfs.
fn resident_memory() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<u64>().ok())
            .map_or(0, |kb| kb * 1024)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

struct Args {
    refs: u64,
    nodes: u16,
    shards: usize,
    protocol: Protocol,
    reprs: Vec<DirectoryRepr>,
    prefix: u64,
    rss_limit_mb: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        refs: 10_000_000,
        nodes: 256,
        shards: 4,
        protocol: Protocol::Aggressive,
        reprs: Vec::new(),
        prefix: 1_000_000,
        rss_limit_mb: 2048,
        out: "BENCH_scale.json".to_string(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let mut explicit_reprs = Vec::new();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> &str {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{BIN}: {name} needs a value");
                exit(2)
            })
        };
        match flag.as_str() {
            "--full" => {
                args.refs = 1_000_000_000;
                args.nodes = 1024;
            }
            "--refs" => {
                args.refs = value("--refs").parse().unwrap_or_else(|e| {
                    eprintln!("{BIN}: bad --refs: {e}");
                    exit(2)
                })
            }
            "--nodes" => {
                args.nodes = value("--nodes").parse().unwrap_or_else(|e| {
                    eprintln!("{BIN}: bad --nodes: {e}");
                    exit(2)
                })
            }
            "--shards" => {
                args.shards = value("--shards").parse().unwrap_or_else(|e| {
                    eprintln!("{BIN}: bad --shards: {e}");
                    exit(2)
                })
            }
            "--protocol" => {
                args.protocol = parse_protocol(value("--protocol")).unwrap_or_else(|e| {
                    eprintln!("{BIN}: {e}");
                    exit(2)
                })
            }
            "--directory" => explicit_reprs.push(
                parse_directory_repr(value("--directory")).unwrap_or_else(|e| {
                    eprintln!("{BIN}: {e}");
                    exit(2)
                }),
            ),
            "--prefix" => {
                args.prefix = value("--prefix").parse().unwrap_or_else(|e| {
                    eprintln!("{BIN}: bad --prefix: {e}");
                    exit(2)
                })
            }
            "--rss-limit-mb" => {
                args.rss_limit_mb = value("--rss-limit-mb").parse().unwrap_or_else(|e| {
                    eprintln!("{BIN}: bad --rss-limit-mb: {e}");
                    exit(2)
                })
            }
            "--out" => args.out = value("--out").to_string(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: {BIN} [--full] [--refs N] [--nodes N] [--shards K] \
                     [--protocol P] [--directory R]... [--prefix N] \
                     [--rss-limit-mb M] [--out PATH]\
                     \n  --full           the tentpole shape: 1e9 refs, 1024 nodes\
                     \n  --directory R    representation cell to run (repeatable; \
                     default full-map, Dir8B, CV32, Dir8CV32)"
                );
                exit(0);
            }
            other => {
                eprintln!("{BIN}: unknown flag {other} (try --help)");
                exit(2);
            }
        }
    }
    args.reprs = if explicit_reprs.is_empty() {
        vec![
            DirectoryRepr::FullMap,
            DirectoryRepr::LimitedPointer { pointers: 8 },
            DirectoryRepr::CoarseVector { region_size: 32 },
            DirectoryRepr::Sparse {
                pointers: 8,
                region_size: 32,
            },
        ]
    } else {
        explicit_reprs
    };
    if args.refs == 0 || args.nodes == 0 || args.shards == 0 {
        eprintln!("{BIN}: --refs, --nodes, and --shards must be positive");
        exit(2);
    }
    args.prefix = args.prefix.min(args.refs);
    args
}

fn sim_config(nodes: u16, directory: DirectoryRepr) -> DirectorySimConfig {
    DirectorySimConfig {
        nodes,
        directory,
        // Round-robin placement keeps the sweep single-pass: profiled
        // placement would charge a second full scan of the stream per
        // cell for a property this workload does not test.
        placement: PlacementPolicy::RoundRobin,
        ..DirectorySimConfig::default()
    }
}

fn main() {
    let args = parse_args();
    let nodes = u64::from(args.nodes);
    let stream = TraceStream::from_generator(args.refs, move |i| scale_record(i, nodes));

    // --- Gate 1: sequential-vs-sharded parity on the sampled prefix. ---
    let prefix = TraceStream::from_generator(args.prefix, move |i| scale_record(i, nodes));
    let gate_sim = DirectorySim::new(
        args.protocol,
        &sim_config(args.nodes, DirectoryRepr::FullMap),
    )
    .with_engine(EngineKind::Fast);
    let sequential = gate_sim.try_run_stream(&prefix).unwrap_or_else(|e| {
        eprintln!("{BIN}: prefix run failed: {e}");
        exit(1);
    });
    let sharded = gate_sim
        .try_run_stream_sharded(&prefix, args.shards)
        .unwrap_or_else(|e| {
            eprintln!("{BIN}: sharded prefix run failed: {e}");
            exit(1);
        });
    if sequential != sharded {
        eprintln!(
            "{BIN}: PARITY GATE FAILED — sequential and K={} sharded prefix runs diverged",
            args.shards
        );
        exit(1);
    }
    eprintln!(
        "{BIN}: parity gate ok ({} refs, sequential == K={} sharded)",
        args.prefix, args.shards
    );

    // --- Gate 2: kill-and-resume through a re-created stream. ---
    let cut = args.prefix / 2;
    let ckpt = gate_sim
        .stream_checkpoint_after(&prefix, args.shards, cut)
        .unwrap_or_else(|e| {
            eprintln!("{BIN}: checkpoint at {cut} failed: {e}");
            exit(1);
        });
    let reopened = TraceStream::from_generator(args.prefix, move |i| scale_record(i, nodes));
    let resumed = gate_sim
        .resume_stream_from(&reopened, &ckpt, None)
        .unwrap_or_else(|e| {
            eprintln!("{BIN}: resume from {cut} failed: {e}");
            exit(1);
        });
    if resumed != sequential {
        eprintln!("{BIN}: RESUME GATE FAILED — resumed run diverged from the uninterrupted one");
        exit(1);
    }
    eprintln!("{BIN}: resume gate ok (cut at {cut}, re-created stream)");

    // --- The sweep: one cell per representation. ---
    let rss_limit = args.rss_limit_mb * 1024 * 1024;
    let mut cells = Vec::new();
    let mut gate_failed = false;
    for &repr in &args.reprs {
        let sim = DirectorySim::new(args.protocol, &sim_config(args.nodes, repr))
            .with_engine(EngineKind::Fast);
        let started = Instant::now();
        let result = sim
            .try_run_stream_sharded(&stream, args.shards)
            .unwrap_or_else(|e| {
                eprintln!("{BIN}: {repr} run failed: {e}");
                exit(1);
            });
        let secs = started.elapsed().as_secs_f64();
        let (rss, hwm) = resident_memory();
        let rps = if secs > 0.0 {
            (args.refs as f64 / secs) as u64
        } else {
            0
        };
        let bounded = hwm == 0 || hwm <= rss_limit;
        if !bounded {
            gate_failed = true;
        }
        eprintln!(
            "{BIN}: {repr:>10}  {rps:>12} refs/s  rss {:>6} MiB  hwm {:>6} MiB  {} messages{}",
            rss / (1024 * 1024),
            hwm / (1024 * 1024),
            result.total_messages(),
            if bounded { "" } else { "  [RSS OVER LIMIT]" },
        );
        cells.push(Json::Obj(vec![
            ("directory".into(), Json::Str(repr.to_string())),
            ("refs_per_sec".into(), Json::u64(rps)),
            ("seconds".into(), Json::Str(format!("{secs:.3}"))),
            ("vm_rss_bytes".into(), Json::u64(rss)),
            ("vm_hwm_bytes".into(), Json::u64(hwm)),
            ("total_messages".into(), Json::u64(result.total_messages())),
            (
                "broadcast_invalidations".into(),
                Json::u64(result.events.broadcast_invalidations),
            ),
            ("rss_bounded".into(), Json::Bool(bounded)),
        ]));
    }

    let summary = Json::Obj(vec![
        ("bench".into(), Json::Str("scale".into())),
        ("refs".into(), Json::u64(args.refs)),
        ("nodes".into(), Json::u64(u64::from(args.nodes))),
        ("shards".into(), Json::u64(args.shards as u64)),
        (
            "protocol".into(),
            Json::Str(mcc_check::protocol_slug(args.protocol)),
        ),
        ("parity_prefix".into(), Json::u64(args.prefix)),
        ("rss_limit_bytes".into(), Json::u64(rss_limit)),
        ("parity_gate".into(), Json::Str("ok".into())),
        ("resume_gate".into(), Json::Str("ok".into())),
        ("cells".into(), Json::Arr(cells)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{summary}\n")) {
        eprintln!("{BIN}: cannot write {}: {e}", args.out);
        exit(1);
    }
    eprintln!("{BIN}: wrote {}", args.out);
    if gate_failed {
        eprintln!(
            "{BIN}: MEMORY GATE FAILED — peak RSS exceeded {} MiB",
            args.rss_limit_mb
        );
        exit(1);
    }
}
