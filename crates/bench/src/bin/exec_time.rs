//! §4.2: execution-driven timing comparison — how much execution time
//! the basic adaptive protocol saves over the conventional protocol on a
//! DASH-like CC-NUMA with round-robin page placement.

use mcc_bench::{exec_time_comparison, Scenario};
use mcc_stats::Table;

fn main() {
    let scenario = Scenario::from_env("exec_time", "§4.2 execution-time comparison");
    let mut table = Table::new([
        "app",
        "conventional cycles",
        "basic cycles",
        "time reduction %",
        "read-miss latency reduction %",
        "p95 read-miss latency (conv/basic)",
    ]);
    table.title(format!(
        "§4.2 — execution-driven simulation ({} nodes, scale {}, round-robin placement)",
        scenario.nodes, scenario.scale
    ));
    for cmp in exec_time_comparison(&scenario) {
        table.row([
            cmp.app.name().to_string(),
            cmp.conventional.cycles.to_string(),
            cmp.basic.cycles.to_string(),
            format!("{:.1}", cmp.time_reduction()),
            format!("{:.1}", cmp.read_latency_reduction()),
            format!(
                "{}/{}",
                cmp.conventional.read_miss_latency.percentile(95.0),
                cmp.basic.read_miss_latency.percentile(95.0)
            ),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Paper: Cholesky 19.3%, MP3D 10.4%, Water 3.5% parallel-section time reduction;\n\
             ~20% average read-miss latency reduction from eliminated invalidation contention."
        );
    }
}
