//! §4.3: bus-based protocol evaluation — cost reduction of the adaptive
//! snooping protocol over MESI under the two §4.3 cost models.

use mcc_bench::{bus_sweep, Scenario};
use mcc_snoop::BusCostModel;
use mcc_stats::Table;

fn main() {
    let scenario = Scenario::from_env("bus_protocol", "§4.3 bus-based protocol comparison");
    for cache_kb in [Some(64), Some(1024), None] {
        let label = match cache_kb {
            Some(kb) => format!("{kb} Kbyte caches"),
            None => "infinite caches".to_string(),
        };
        let mut table = Table::new([
            "app",
            "MESI txns",
            "adaptive txns",
            "model 1 %",
            "model 2 %",
            "migrate-first txns",
        ]);
        table.title(format!("§4.3 — snooping bus, {label}"));
        for cmp in bus_sweep(cache_kb, &scenario) {
            table.row([
                cmp.app.name().to_string(),
                cmp.mesi.transactions().to_string(),
                cmp.adaptive.transactions().to_string(),
                format!("{:.1}", cmp.reduction(BusCostModel::Unit)),
                format!("{:.1}", cmp.reduction(BusCostModel::ReplyWeighted)),
                cmp.migrate_first.transactions().to_string(),
            ]);
        }
        if scenario.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
    println!(
        "Paper: Water/MP3D save >40% (model 1) and 25–30% (model 2) at 64 KB+;\n\
         Pthor saves 7–10% (model 1) and 3.9–5% (model 2)."
    );
}
