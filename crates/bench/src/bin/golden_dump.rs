//! Prints the golden regression numbers used by `tests/golden_counts.rs`
//! (exact message totals at a pinned configuration and seed). Run after
//! any intentional workload or protocol change and update the test.

use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let cfg = DirectorySimConfig::default();
    let params = WorkloadParams::new(16).scale(0.1).seed(42);
    for app in Workload::ALL {
        let trace = app.generate(&params);
        print!("        (Workload::{:?}, {}", app, trace.len());
        for p in Protocol::PAPER_SET {
            let r = DirectorySim::new(p, &cfg).run(&trace);
            print!(", {}", r.total_messages());
        }
        println!("),");
    }
}
