//! Prints the golden regression numbers used by `tests/golden_counts.rs`
//! (exact message totals at a pinned configuration and seed). Run after
//! any intentional workload or protocol change and update the test.
//!
//! Usage: `golden_dump [--directory R]` — `R` is a representation slug
//! (`full-map`, `dirNb`, `cvR`, `dirNcvR`); the default sweeps every
//! representation the golden test pins.

use std::process::exit;

use mcc_check::parse_directory_repr;
use mcc_core::{DirectoryRepr, DirectorySim, DirectorySimConfig, Protocol};
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reprs: Vec<DirectoryRepr> = match args.as_slice() {
        [] => vec![
            DirectoryRepr::FullMap,
            DirectoryRepr::LimitedPointer { pointers: 4 },
            DirectoryRepr::CoarseVector { region_size: 4 },
        ],
        [flag, value] if flag == "--directory" => {
            vec![parse_directory_repr(value).unwrap_or_else(|e| {
                eprintln!("golden_dump: {e}");
                exit(2);
            })]
        }
        _ => {
            eprintln!("usage: golden_dump [--directory R]");
            exit(2);
        }
    };
    let params = WorkloadParams::new(16).scale(0.1).seed(42);
    for directory in reprs {
        println!("    // {directory}");
        let cfg = DirectorySimConfig {
            directory,
            ..DirectorySimConfig::default()
        };
        for app in Workload::ALL {
            let trace = app.generate(&params);
            print!("        (Workload::{:?}, {}", app, trace.len());
            for p in Protocol::PAPER_SET {
                let r = DirectorySim::new(p, &cfg).run(&trace);
                print!(", {}", r.total_messages());
            }
            println!("),");
        }
    }
}
