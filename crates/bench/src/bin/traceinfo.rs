//! Inspects an MCCT trace file: summary statistics plus per-protocol
//! message counts under the default directory configuration.
//!
//! Usage: `traceinfo <trace.mcct> [--simulate]`

use std::process::exit;

use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_trace::Trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: traceinfo <trace.mcct> [--simulate]");
        exit(2);
    }
    let path = &args[0];
    let simulate = args.iter().any(|a| a == "--simulate");
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("traceinfo: cannot open {path}: {e}");
        exit(1);
    });
    let trace = Trace::read_from(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("traceinfo: {e}");
        exit(1);
    });
    println!("{path}:");
    println!("{}", trace.stats());
    if simulate {
        println!();
        // The directory spills wide copy sets to the heap, so any node
        // count a u16 config can express is simulable. Only a (possibly
        // corrupt) trace naming node id 65535 — which would need 65536
        // nodes — is out of range.
        let nodes = trace.stats().nodes.max(1);
        let Ok(nodes) = u16::try_from(nodes) else {
            eprintln!("traceinfo: trace names {nodes} nodes; the simulator supports at most 65535");
            exit(1);
        };
        let config = DirectorySimConfig {
            nodes,
            ..DirectorySimConfig::default()
        };
        // A trace file is untrusted input, so surface simulation
        // failures (e.g. out-of-range nodes) as errors, not panics.
        let simulate = |protocol| {
            DirectorySim::new(protocol, &config)
                .try_run(&trace)
                .unwrap_or_else(|e| {
                    eprintln!("traceinfo: {e}");
                    exit(1);
                })
        };
        let baseline = simulate(Protocol::Conventional);
        for protocol in Protocol::PAPER_SET {
            let result = simulate(protocol);
            println!(
                "{:<14} {:>9} messages ({:>5.1}% vs conventional)",
                protocol.to_string(),
                result.total_messages(),
                result.percent_reduction_vs(&baseline)
            );
        }
    }
}
