//! Limited-pointer directory study (extension): how a Dir-i-B directory
//! (i sharer pointers, broadcast on overflow) interacts with the
//! adaptive protocol. Migratory blocks never exceed two copies, so the
//! adaptive protocol keeps limited-pointer entries precise exactly
//! where a conventional protocol suffers broadcasts.

use mcc_bench::Scenario;
use mcc_core::{DirectoryRepr, DirectorySim, DirectorySimConfig, Protocol};
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("ablation_limited_pointers", "Dir-i-B directory study");
    let mut table = Table::new([
        "app",
        "repr",
        "conv msgs",
        "aggr msgs",
        "aggr %",
        "conv broadcasts",
        "aggr broadcasts",
    ]);
    table.title("Limited-pointer directories: messages (thousands) and broadcast invalidations");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        for repr in [
            DirectoryRepr::FullMap,
            DirectoryRepr::LimitedPointer { pointers: 4 },
            DirectoryRepr::LimitedPointer { pointers: 2 },
        ] {
            let cfg = DirectorySimConfig {
                nodes: scenario.nodes,
                directory: repr,
                ..DirectorySimConfig::default()
            };
            let conv = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
            let aggr = DirectorySim::new(Protocol::Aggressive, &cfg).run(&trace);
            table.row([
                app.name().to_string(),
                repr.to_string(),
                mcc_stats::thousands(conv.total_messages()),
                mcc_stats::thousands(aggr.total_messages()),
                format!("{:.1}", aggr.percent_reduction_vs(&conv)),
                conv.events.broadcast_invalidations.to_string(),
                aggr.events.broadcast_invalidations.to_string(),
            ]);
        }
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "Migratory blocks live with <= 2 copies, so the migratory applications are\n\
             insensitive to the pointer limit, and adaptivity cuts the broadcast\n\
             invalidations the remaining traffic provokes."
        );
    }
}
