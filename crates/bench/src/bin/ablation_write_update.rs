//! §1 baseline ablation: write-update vs write-invalidate vs the
//! adaptive protocol on a snooping bus. The paper starts from
//! write-invalidate because update-based protocols broadcast on every
//! write to shared data — fatal for migratory access.

use mcc_bench::Scenario;
use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol, UpdateBusSim};
use mcc_stats::Table;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let scenario = Scenario::from_env("ablation_write_update", "§1 write-update baseline");
    let cfg = BusSimConfig {
        nodes: scenario.nodes,
        ..BusSimConfig::default()
    };
    let mut table = Table::new([
        "app",
        "write-update txns",
        "MESI txns",
        "adaptive txns",
        "update:adaptive ratio",
    ]);
    table.title("Bus transactions (thousands) per strategy");
    for app in Workload::ALL {
        let trace = app.generate(
            &WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed),
        );
        let update = UpdateBusSim::new(&cfg).run(&trace);
        let mesi = BusSim::new(SnoopProtocol::Mesi, &cfg).run(&trace);
        let adaptive = BusSim::new(SnoopProtocol::Adaptive, &cfg).run(&trace);
        table.row([
            app.name().to_string(),
            mcc_stats::thousands(update.transactions()),
            mcc_stats::thousands(mesi.transactions()),
            mcc_stats::thousands(adaptive.transactions()),
            format!(
                "{:.1}x",
                update.transactions() as f64 / adaptive.transactions() as f64
            ),
        ]);
    }
    if scenario.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
        println!(
            "§1: \"write-update entails interprocessor communication on every write\n\
             operation to shared data\" — hence the paper starts from write-invalidate."
        );
    }
}
