//! The experiment harness: functions that regenerate every table and
//! figure of the paper, shared by the `table*`/`figure*` binaries, the
//! self-timed benches, and the integration tests.
//!
//! Each experiment takes a [`Scenario`] (node count, work scale, seed)
//! so the same code can run paper-scale sweeps from the binaries and
//! quick-shape checks from the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod obs;
pub mod timing;

pub use args::Scenario;
pub use experiments::{
    block_size_sweep, bus_sweep, cache_size_sweep, cost_ratio_table, exec_time_comparison,
    policy_ablation, render_message_rows, run_protocol, try_run_protocol, try_run_protocol_traced,
    BusComparison, ExecComparison, MessageRow, RunOptions, BLOCK_SIZES, CACHE_SIZES_KB,
};
pub use obs::ObsOptions;

/// Default work-scale used by the table binaries: large enough for
/// stable percentages, small enough to finish a full table in minutes.
pub const DEFAULT_SCALE: f64 = 0.1;
