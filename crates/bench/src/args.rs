//! Minimal command-line handling shared by the harness binaries.

use std::process::exit;

/// A run scenario: machine size, work scale, and RNG seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scenario {
    /// Nodes in the simulated machine.
    pub nodes: u16,
    /// Work multiplier applied to the workload generators.
    pub scale: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Address shards for the parallel trace-driven engine (1 =
    /// sequential).
    pub shards: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            nodes: 16,
            scale: crate::DEFAULT_SCALE,
            seed: 0,
            csv: false,
            shards: 1,
        }
    }
}

impl Scenario {
    /// Parses `--nodes N`, `--scale X`, `--seed N`, `--csv` from the
    /// process arguments; prints usage and exits on anything else.
    pub fn from_env(bin: &str, what: &str) -> Self {
        let mut s = Scenario::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("{bin}: {name} needs a value");
                    exit(2);
                })
            };
            match arg.as_str() {
                "--nodes" => s.nodes = parse(bin, "--nodes", &value("--nodes")),
                "--scale" => s.scale = parse(bin, "--scale", &value("--scale")),
                "--seed" => s.seed = parse(bin, "--seed", &value("--seed")),
                "--shards" => {
                    s.shards = parse(bin, "--shards", &value("--shards"));
                    if s.shards == 0 {
                        eprintln!("{bin}: --shards must be at least 1");
                        exit(2);
                    }
                }
                "--csv" => s.csv = true,
                "--help" | "-h" => {
                    println!(
                        "{bin} — {what}\n\nUsage: {bin} [--nodes N] [--scale X] [--seed N] \
                         [--shards K] [--csv]\n\
                         \n  --nodes N   simulated machine size (default 16)\
                         \n  --scale X   workload work multiplier (default {})\
                         \n  --seed N    workload RNG seed (default 0)\
                         \n  --shards K  address shards for the parallel engine (default 1;\
                         \n              requires infinite caches, results are bit-identical)\
                         \n  --csv       emit CSV instead of aligned text",
                        crate::DEFAULT_SCALE
                    );
                    exit(0);
                }
                other => {
                    eprintln!("{bin}: unknown argument {other:?} (try --help)");
                    exit(2);
                }
            }
        }
        s
    }
}

fn parse<T: std::str::FromStr>(bin: &str, name: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{bin}: invalid value {raw:?} for {name}");
        exit(2);
    })
}
