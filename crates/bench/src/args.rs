//! Minimal command-line handling shared by the harness binaries.

use std::path::PathBuf;
use std::process::exit;

use mcc_core::CheckpointPolicy;

use crate::experiments::RunOptions;
use crate::obs::ObsOptions;

/// A run scenario: machine size, work scale, and RNG seed.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Nodes in the simulated machine.
    pub nodes: u16,
    /// Work multiplier applied to the workload generators.
    pub scale: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Address shards for the parallel trace-driven engine (1 =
    /// sequential).
    pub shards: usize,
    /// Snapshot cadence in records for crash-safe runs (0 = only a
    /// final snapshot when a checkpoint path is set).
    pub checkpoint_every: u64,
    /// File periodic snapshots are written to.
    pub checkpoint: Option<PathBuf>,
    /// Snapshot file to resume a killed run from.
    pub resume: Option<PathBuf>,
    /// File the merged protocol event stream is written to (JSONL).
    pub events_out: Option<PathBuf>,
    /// File the metrics registry is written to (JSON).
    pub metrics_out: Option<PathBuf>,
    /// Flight-recorder ring size (0 = not requested).
    pub events_ring: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            nodes: 16,
            scale: crate::DEFAULT_SCALE,
            seed: 0,
            csv: false,
            shards: 1,
            checkpoint_every: 0,
            checkpoint: None,
            resume: None,
            events_out: None,
            metrics_out: None,
            events_ring: 0,
        }
    }
}

impl Scenario {
    /// Parses `--nodes N`, `--scale X`, `--seed N`, `--csv` from the
    /// process arguments; prints usage and exits on anything else.
    pub fn from_env(bin: &str, what: &str) -> Self {
        let mut s = Scenario::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("{bin}: {name} needs a value");
                    exit(2);
                })
            };
            match arg.as_str() {
                "--nodes" => s.nodes = parse(bin, "--nodes", &value("--nodes")),
                "--scale" => s.scale = parse(bin, "--scale", &value("--scale")),
                "--seed" => s.seed = parse(bin, "--seed", &value("--seed")),
                "--shards" => {
                    s.shards = parse(bin, "--shards", &value("--shards"));
                    if s.shards == 0 {
                        eprintln!("{bin}: --shards must be at least 1");
                        exit(2);
                    }
                }
                "--csv" => s.csv = true,
                "--checkpoint-every" => {
                    s.checkpoint_every =
                        parse(bin, "--checkpoint-every", &value("--checkpoint-every"));
                }
                "--checkpoint" => s.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
                "--resume" => s.resume = Some(PathBuf::from(value("--resume"))),
                "--events-out" => s.events_out = Some(PathBuf::from(value("--events-out"))),
                "--metrics-out" => s.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
                "--events-ring" => {
                    s.events_ring = parse(bin, "--events-ring", &value("--events-ring"));
                    if s.events_ring == 0 {
                        eprintln!("{bin}: --events-ring must be at least 1");
                        exit(2);
                    }
                }
                "--help" | "-h" => {
                    println!(
                        "{bin} — {what}\n\nUsage: {bin} [--nodes N] [--scale X] [--seed N] \
                         [--shards K] [--csv]\n\
                         \n  --nodes N             simulated machine size (default 16)\
                         \n  --scale X             workload work multiplier (default {})\
                         \n  --seed N              workload RNG seed (default 0)\
                         \n  --shards K            address shards for the parallel engine (default 1;\
                         \n                        requires infinite caches, results are bit-identical)\
                         \n  --csv                 emit CSV instead of aligned text\
                         \n  --checkpoint-every N  snapshot a crash-safe run every N records\
                         \n  --checkpoint PATH     file snapshots are written to (default\
                         \n                        mcc-bench.ckpt when a cadence is set)\
                         \n  --resume PATH         resume a killed run from its snapshot\
                         \n  --events-out PATH     write the protocol event stream as JSON Lines\
                         \n  --metrics-out PATH    write the metrics registry (counters, histograms,\
                         \n                        interval snapshots) as JSON\
                         \n  --events-ring K       keep the last K events for the flight-recorder\
                         \n                        dump rendered when a run fails",
                        crate::DEFAULT_SCALE
                    );
                    exit(0);
                }
                other => {
                    eprintln!("{bin}: unknown argument {other:?} (try --help)");
                    exit(2);
                }
            }
        }
        s
    }
}

impl Scenario {
    /// The [`RunOptions`] this scenario's checkpoint flags describe:
    /// `--shards`, `--checkpoint`/`--checkpoint-every` (folded into a
    /// [`CheckpointPolicy`]; the path defaults to `mcc-bench.ckpt` when
    /// only a cadence was given), and `--resume`.
    pub fn run_options(&self) -> RunOptions {
        let checkpoint = match (self.checkpoint_every, &self.checkpoint) {
            (0, None) => None,
            (every, Some(path)) => Some(CheckpointPolicy::new(every, path)),
            (every, None) => Some(CheckpointPolicy::new(every, "mcc-bench.ckpt")),
        };
        RunOptions {
            shards: self.shards,
            checkpoint,
            resume: self.resume.clone(),
            faults: None,
            obs: ObsOptions {
                events_out: self.events_out.clone(),
                metrics_out: self.metrics_out.clone(),
                events_ring: self.events_ring,
            },
        }
    }
}

fn parse<T: std::str::FromStr>(bin: &str, name: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{bin}: invalid value {raw:?} for {name}");
        exit(2);
    })
}
