//! The paper's experiments as reusable functions.

use std::path::{Path, PathBuf};

use mcc_cache::{CacheConfig, CacheGeometry};
use mcc_core::{
    Checkpoint, CheckpointPolicy, DirectorySim, DirectorySimConfig, FaultPlan, PlacementPolicy,
    Protocol, SimError, SimResult, SnapshotGeneration,
};
use mcc_stats::{thousands, Table};
use mcc_trace::BlockSize;
use mcc_workloads::{Workload, WorkloadParams};

use crate::obs::ObsOptions;
use crate::Scenario;

/// The per-node cache capacities of Table 2, in kilobytes.
pub const CACHE_SIZES_KB: [u64; 5] = [4, 16, 64, 256, 1024];

/// The block sizes of Table 3.
pub const BLOCK_SIZES: [BlockSize; 5] = BlockSize::TABLE3_SWEEP;

/// One application's results across the four paper protocols
/// (conventional, conservative, basic, aggressive — in
/// [`Protocol::PAPER_SET`] order).
#[derive(Clone, Debug)]
pub struct MessageRow {
    /// The workload simulated.
    pub app: Workload,
    /// Results indexed like [`Protocol::PAPER_SET`].
    pub results: Vec<SimResult>,
}

impl MessageRow {
    /// Percentage reduction in total messages of protocol `i` (in
    /// [`Protocol::PAPER_SET`] order) versus the conventional baseline.
    pub fn pct(&self, i: usize) -> f64 {
        self.results[i].percent_reduction_vs(&self.results[0])
    }
}

/// How [`try_run_protocol`] executes one simulation: shard count,
/// optional crash-safe snapshotting, and an optional snapshot to resume
/// from. The checkpoint flags a binary parses land here via
/// [`Scenario::run_options`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Address shards for the parallel engine (0 and 1 both mean
    /// sequential).
    pub shards: usize,
    /// When set, write crash-safe snapshots per
    /// [`CheckpointPolicy::every`] and once on completion.
    pub checkpoint: Option<CheckpointPolicy>,
    /// When set, load this snapshot and replay only the unprocessed
    /// tail instead of starting over.
    pub resume: Option<PathBuf>,
    /// Injected interconnect faults for the run, if any.
    pub faults: Option<FaultPlan>,
    /// Observability outputs (event JSONL, metrics JSON, flight-recorder
    /// ring). When none are requested the router takes the exact
    /// un-instrumented code path.
    pub obs: ObsOptions,
}

impl RunOptions {
    /// Sequential, no snapshots — plain [`DirectorySim::try_run`].
    pub fn sequential() -> Self {
        RunOptions::default()
    }

    /// `shards`-way parallel, no snapshots.
    pub fn sharded(shards: usize) -> Self {
        RunOptions {
            shards,
            ..RunOptions::default()
        }
    }
}

/// Runs `protocol` over `trace`, routing through the address-sharded
/// parallel engine when more than one shard is requested and the
/// configuration supports it (infinite caches). Finite-cache
/// configurations cannot shard — an insertion may evict a block owned
/// by another shard — so the router degrades them to the sequential
/// engine and says so once on stderr: the results are identical either
/// way, the sharded path is purely a wall-clock optimisation.
///
/// With [`RunOptions::checkpoint`] set the run writes crash-safe
/// snapshots as it goes; with [`RunOptions::resume`] set it continues a
/// killed run from its snapshot instead of starting over.
///
/// # Errors
///
/// Everything [`DirectorySim::try_run`] reports, plus
/// [`SimError::BadCheckpoint`] for an unreadable, corrupt, or
/// mismatched snapshot.
pub fn try_run_protocol(
    protocol: Protocol,
    cfg: &DirectorySimConfig,
    trace: &mcc_trace::Trace,
    opts: &RunOptions,
) -> Result<SimResult, SimError> {
    try_run_protocol_traced(protocol, cfg, trace, opts).map(|(result, _)| result)
}

/// [`try_run_protocol`], additionally reporting which snapshot
/// generation a resumed run actually recovered from: `None` for a
/// fresh (non-resumed) run, otherwise the generation the fallback
/// loader settled on. Sweep supervisors record this per cell so a
/// rotated-generation recovery is visible in the results, not just on
/// stderr.
pub fn try_run_protocol_traced(
    protocol: Protocol,
    cfg: &DirectorySimConfig,
    trace: &mcc_trace::Trace,
    opts: &RunOptions,
) -> Result<(SimResult, Option<SnapshotGeneration>), SimError> {
    let mut sim = DirectorySim::new(protocol, cfg);
    if let Some(plan) = opts.faults {
        sim = sim.with_faults(plan);
    }
    let mut shards = opts.shards.max(1);
    if shards > 1 && cfg.cache != CacheConfig::Infinite {
        degradation_notice(shards);
        shards = 1;
    }
    if opts.obs.is_active() {
        return crate::obs::run_observed(&sim, trace, shards, opts);
    }
    if let Some(path) = &opts.resume {
        let (checkpoint, generation) = load_resume_checkpoint(path)?;
        return sim
            .resume_from(trace, &checkpoint, opts.checkpoint.as_ref())
            .map(|r| (r, Some(generation)));
    }
    if let Some(policy) = &opts.checkpoint {
        return sim.run_resumable(trace, shards, policy).map(|r| (r, None));
    }
    if shards > 1 {
        sim.try_run_sharded(trace, shards).map(|r| (r, None))
    } else {
        sim.try_run(trace).map(|r| (r, None))
    }
}

/// Loads a resume snapshot with last-good fallback: a primary that
/// fails to load falls back to its rotated `.prev` sibling (with a
/// stderr notice naming the error class), and only when every
/// generation is unusable does this report [`SimError::BadCheckpoint`]
/// — the reason then says whether a previous generation was even there
/// to try.
pub(crate) fn load_resume_checkpoint(
    path: &Path,
) -> Result<(Checkpoint, SnapshotGeneration), SimError> {
    match Checkpoint::load_with_fallback(path) {
        Ok(recovered) => {
            if let Some(err) = &recovered.primary_error {
                eprintln!(
                    "mcc-bench: snapshot {} unusable ({}: {err}); \
                     recovered from the rotated {} generation",
                    path.display(),
                    err.class(),
                    recovered.generation,
                );
            }
            Ok((recovered.checkpoint, recovered.generation))
        }
        Err(e) => {
            let prev = mcc_core::checkpoint::prev_path(path);
            let fallback_note = if prev.exists() {
                format!("; the rotated {} is unusable too", prev.display())
            } else {
                format!("; no rotated {} to fall back to", prev.display())
            };
            Err(SimError::BadCheckpoint {
                reason: format!(
                    "loading {} ({}): {e}{fallback_note}",
                    path.display(),
                    e.class()
                ),
            })
        }
    }
}

/// One-line, once-per-process notice that a sharded request degraded to
/// the sequential engine (the sweeps call the router hundreds of times;
/// repeating the notice would bury the tables it accompanies).
fn degradation_notice(requested: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "mcc-bench: finite caches cannot shard (an eviction may touch another shard's \
             block); degraded the {requested}-shard request to the sequential engine"
        );
    });
}

/// Panicking convenience wrapper over [`try_run_protocol`] for the
/// table binaries, which have no error path of their own: any
/// simulation failure is a bug worth dying loudly on.
pub fn run_protocol(
    protocol: Protocol,
    cfg: &DirectorySimConfig,
    trace: &mcc_trace::Trace,
    shards: usize,
) -> SimResult {
    try_run_protocol(protocol, cfg, trace, &RunOptions::sharded(shards))
        .unwrap_or_else(|e| panic!("{e}"))
}

fn run_all_protocols(cfg: &DirectorySimConfig, scenario: &Scenario, app: Workload) -> MessageRow {
    let params = WorkloadParams::new(scenario.nodes)
        .scale(scenario.scale)
        .seed(scenario.seed);
    let trace = app.generate(&params);
    let base = scenario.run_options();
    let results = Protocol::PAPER_SET
        .iter()
        .map(|&p| run_protocol_cell(p, cfg, &trace, app, &base))
        .collect();
    MessageRow { app, results }
}

/// The snapshot file for one sweep cell: the user-supplied base path
/// suffixed with the cell's workload, protocol, and a hash of its
/// config — a sweep visits the same (app, protocol) pair once per cache
/// or block size, and each cell needs its own snapshot.
fn cell_path(
    base: &std::path::Path,
    cfg: &DirectorySimConfig,
    app: Workload,
    p: Protocol,
) -> PathBuf {
    let cfg_hash = mcc_core::checkpoint::fnv1a_64(format!("{cfg:?}").as_bytes());
    let mut name = base
        .file_name()
        .map_or_else(|| "ckpt".into(), |n| n.to_string_lossy().into_owned());
    name.push_str(&format!(
        ".{}-{p}-{:08x}",
        app.name().to_lowercase().replace(' ', "-"),
        cfg_hash as u32
    ));
    base.with_file_name(name)
}

/// [`run_protocol`] for one cell of a checkpointed sweep: snapshots and
/// resumes use the cell's own derived path, a cell whose snapshot is
/// already complete resumes straight to its result (so a restarted
/// sweep skips finished cells), and an unusable snapshot degrades to a
/// fresh run with a stderr notice instead of failing the sweep.
/// Observability outputs are likewise suffixed per cell, so a sweep
/// with `--events-out`/`--metrics-out` leaves one artifact pair per
/// (workload, protocol, config) instead of overwriting a single file.
fn run_protocol_cell(
    protocol: Protocol,
    cfg: &DirectorySimConfig,
    trace: &mcc_trace::Trace,
    app: Workload,
    base: &RunOptions,
) -> SimResult {
    let mut opts = base.clone();
    if let Some(policy) = &base.checkpoint {
        opts.checkpoint = Some(CheckpointPolicy::new(
            policy.every,
            cell_path(&policy.path, cfg, app, protocol),
        ));
    }
    if let Some(resume_base) = &base.resume {
        let path = cell_path(resume_base, cfg, app, protocol);
        opts.resume = path.exists().then_some(path);
    }
    if let Some(events_base) = &base.obs.events_out {
        opts.obs.events_out = Some(cell_path(events_base, cfg, app, protocol));
    }
    if let Some(metrics_base) = &base.obs.metrics_out {
        opts.obs.metrics_out = Some(cell_path(metrics_base, cfg, app, protocol));
    }
    let resuming = opts.resume.is_some();
    match try_run_protocol(protocol, cfg, trace, &opts) {
        Err(SimError::BadCheckpoint { reason }) if resuming => {
            opts.resume = None;
            eprintln!(
                "mcc-bench: {}/{protocol}: snapshot unusable ({reason}); \
                 rerunning the cell from scratch",
                app.name()
            );
            try_run_protocol(protocol, cfg, trace, &opts).unwrap_or_else(|e| panic!("{e}"))
        }
        other => other.unwrap_or_else(|e| panic!("{e}")),
    }
}

/// One cache-size section of Table 2: message counts for every
/// application under every protocol with finite 4-way caches of
/// `cache_kb` kilobytes per node and 16-byte blocks, using the profiled
/// static page placement (§3.3).
pub fn cache_size_sweep(cache_kb: u64, scenario: &Scenario) -> Vec<MessageRow> {
    let geometry = CacheGeometry::paper_default(cache_kb * 1024, BlockSize::B16)
        .expect("paper cache sizes are valid");
    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        block_size: BlockSize::B16,
        cache: CacheConfig::Finite(geometry),
        placement: PlacementPolicy::Profiled,
        ..DirectorySimConfig::default()
    };
    Workload::ALL
        .iter()
        .map(|&app| run_all_protocols(&cfg, scenario, app))
        .collect()
}

/// One block-size section of Table 3: message counts with caches "large
/// enough to eliminate capacity misses" (infinite) at the given block
/// size.
pub fn block_size_sweep(block_size: BlockSize, scenario: &Scenario) -> Vec<MessageRow> {
    let cfg = DirectorySimConfig {
        nodes: scenario.nodes,
        block_size,
        cache: CacheConfig::Infinite,
        placement: PlacementPolicy::Profiled,
        ..DirectorySimConfig::default()
    };
    Workload::ALL
        .iter()
        .map(|&app| run_all_protocols(&cfg, scenario, app))
        .collect()
}

/// Renders rows in the layout of the paper's Tables 2 and 3: message
/// counts in thousands, split into messages without and with data, plus
/// the percentage reduction of each adaptive protocol.
pub fn render_message_rows(title: &str, rows: &[MessageRow]) -> Table {
    let mut table = Table::new([
        "app",
        "conv w/o",
        "conv w/",
        "cons w/o",
        "cons w/",
        "cons %",
        "basic w/o",
        "basic w/",
        "basic %",
        "aggr w/o",
        "aggr w/",
        "aggr %",
    ]);
    table.title(title);
    for row in rows {
        let cells: Vec<String> = std::iter::once(row.app.name().to_string())
            .chain((0..4).flat_map(|i| {
                let c = row.results[i].message_count();
                let mut cols = vec![thousands(c.control), thousands(c.data)];
                if i > 0 {
                    cols.push(format!("{:.1}", row.pct(i)));
                }
                cols
            }))
            .collect();
        table.row(cells);
    }
    table
}

/// §4.2: execution-driven timing comparison. Returns, per workload, the
/// conventional and basic-adaptive execution results (round-robin
/// placement, 64 KB caches — the paper's execution-driven setup).
pub fn exec_time_comparison(scenario: &Scenario) -> Vec<ExecComparison> {
    use mcc_execsim::{ExecSim, ExecSimConfig};
    Workload::ALL
        .iter()
        .map(|&app| {
            let mut cfg = ExecSimConfig {
                nodes: scenario.nodes,
                ..ExecSimConfig::default()
            };
            // The traces contain only shared references; how much private
            // compute happens between them differs hugely per program
            // (Water's O(n^2) force evaluation is compute-bound, MP3D is
            // communication-bound) and determines how much of the message
            // savings shows up as time savings.
            cfg.latency.compute_between_refs = compute_density(app);
            let params = WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed);
            let trace = app.generate(&params);
            ExecComparison {
                app,
                conventional: ExecSim::new(Protocol::Conventional, &cfg).run(&trace),
                basic: ExecSim::new(Protocol::Basic, &cfg).run(&trace),
            }
        })
        .collect()
}

/// Average private compute cycles between shared references, per
/// application (see [`exec_time_comparison`]).
fn compute_density(app: Workload) -> u64 {
    match app {
        Workload::Cholesky => 6,
        Workload::LocusRoute => 10,
        Workload::Mp3d => 120,
        Workload::Pthor => 12,
        Workload::Water => 400,
    }
}

/// One workload's §4.2 timing results.
#[derive(Clone, Debug)]
pub struct ExecComparison {
    /// The workload simulated.
    pub app: Workload,
    /// The conventional protocol's timing.
    pub conventional: mcc_execsim::ExecResult,
    /// The basic adaptive protocol's timing.
    pub basic: mcc_execsim::ExecResult,
}

impl ExecComparison {
    /// Percentage execution-time reduction of basic vs conventional.
    pub fn time_reduction(&self) -> f64 {
        self.basic.percent_faster_than(&self.conventional)
    }

    /// Percentage read-miss latency reduction of basic vs conventional.
    pub fn read_latency_reduction(&self) -> f64 {
        let base = self.conventional.avg_read_miss_latency();
        if base == 0.0 {
            0.0
        } else {
            100.0 * (base - self.basic.avg_read_miss_latency()) / base
        }
    }
}

/// §4.3: bus-based evaluation. Returns, per workload, the transaction
/// statistics of MESI and the adaptive snooping protocol with finite
/// caches of `cache_kb` kilobytes (or infinite when `None`).
pub fn bus_sweep(cache_kb: Option<u64>, scenario: &Scenario) -> Vec<BusComparison> {
    use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol};
    let cache = match cache_kb {
        Some(kb) => CacheConfig::Finite(
            CacheGeometry::paper_default(kb * 1024, BlockSize::B16)
                .expect("paper cache sizes are valid"),
        ),
        None => CacheConfig::Infinite,
    };
    let cfg = BusSimConfig {
        nodes: scenario.nodes,
        block_size: BlockSize::B16,
        cache,
    };
    Workload::ALL
        .iter()
        .map(|&app| {
            let params = WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed);
            let trace = app.generate(&params);
            BusComparison {
                app,
                mesi: BusSim::new(SnoopProtocol::Mesi, &cfg).run(&trace),
                adaptive: BusSim::new(SnoopProtocol::Adaptive, &cfg).run(&trace),
                migrate_first: BusSim::new(SnoopProtocol::AdaptiveMigrateFirst, &cfg).run(&trace),
            }
        })
        .collect()
}

/// One workload's §4.3 bus results.
#[derive(Clone, Debug)]
pub struct BusComparison {
    /// The workload simulated.
    pub app: Workload,
    /// Baseline MESI statistics.
    pub mesi: mcc_snoop::BusStats,
    /// Adaptive snooping statistics.
    pub adaptive: mcc_snoop::BusStats,
    /// The §2.1 migrate-first variant's statistics.
    pub migrate_first: mcc_snoop::BusStats,
}

impl BusComparison {
    /// Percentage cost reduction of the adaptive protocol under `model`.
    pub fn reduction(&self, model: mcc_snoop::BusCostModel) -> f64 {
        mcc_stats::percent_reduction(
            self.mesi.cost(model) as f64,
            self.adaptive.cost(model) as f64,
        )
    }
}

/// §4.1 cost-ratio discussion: percentage reductions of the aggressive
/// protocol under different message cost models, per block size.
pub fn cost_ratio_table(scenario: &Scenario) -> Table {
    let mut table = Table::new(["block", "app", "1:1 %", "2:1 %", "4:1 %", "per-16B %"]);
    table.title("Aggressive-protocol reduction under data:control cost ratios");
    for block in BLOCK_SIZES {
        for row in block_size_sweep(block, scenario) {
            let base = &row.results[0];
            let aggr = &row.results[3];
            let cells = [1.0, 2.0, 4.0]
                .iter()
                .map(|&ratio| {
                    mcc_stats::percent_reduction(
                        base.message_count().weighted(ratio),
                        aggr.message_count().weighted(ratio),
                    )
                })
                .collect::<Vec<_>>();
            let per16 = mcc_stats::percent_reduction(
                base.message_count().per_16_bytes(block.bytes()),
                aggr.message_count().per_16_bytes(block.bytes()),
            );
            table.row([
                block.to_string(),
                row.app.name().to_string(),
                format!("{:.1}", cells[0]),
                format!("{:.1}", cells[1]),
                format!("{:.1}", cells[2]),
                format!("{per16:.1}"),
            ]);
        }
    }
    table
}

/// A1 ablation: sweep the three §2 policy axes on every workload with
/// 16-byte blocks, under capacity-free caches *and* small (16 KB) finite
/// caches — the remember-when-uncached axis only matters when blocks
/// actually leave the caches. Returns `(policy label, workload,
/// % reduction vs conventional)` triples; labels carry the cache kind.
pub fn policy_ablation(scenario: &Scenario) -> Vec<(String, Workload, f64)> {
    let small_cache = CacheGeometry::paper_default(16 * 1024, BlockSize::B16)
        .expect("paper cache sizes are valid");
    let mut out = Vec::new();
    for (cache_label, cache) in [
        ("inf", CacheConfig::Infinite),
        ("16K", CacheConfig::Finite(small_cache)),
    ] {
        let cfg = DirectorySimConfig {
            nodes: scenario.nodes,
            block_size: BlockSize::B16,
            cache,
            placement: PlacementPolicy::Profiled,
            ..DirectorySimConfig::default()
        };
        for &app in &Workload::ALL {
            let params = WorkloadParams::new(scenario.nodes)
                .scale(scenario.scale)
                .seed(scenario.seed);
            let trace = app.generate(&params);
            let base = DirectorySim::new(Protocol::Conventional, &cfg).run(&trace);
            for initial_migratory in [false, true] {
                for events_required in [1u8, 2, 3] {
                    for remember_when_uncached in [false, true] {
                        let policy = mcc_core::AdaptivePolicy {
                            initial_migratory,
                            events_required,
                            remember_when_uncached,
                            demote_on_write_miss: false,
                        };
                        let result = DirectorySim::new(Protocol::Custom(policy), &cfg).run(&trace);
                        let label = format!(
                            "{cache_label} init={} events={} remember={}",
                            if initial_migratory { "mig" } else { "rep" },
                            events_required,
                            remember_when_uncached
                        );
                        out.push((label, app, result.percent_reduction_vs(&base)));
                    }
                }
            }
        }
    }
    out
}
