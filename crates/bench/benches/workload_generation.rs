//! Self-timed benchmarks: trace synthesis throughput for the five
//! SPLASH-analogue workload generators.

use mcc_bench::timing::bench;
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let params = WorkloadParams::new(16).scale(0.02).seed(3);
    for workload in Workload::ALL {
        let refs = workload.generate(&params).len() as u64;
        bench(&format!("workload_generation/{workload}"), refs, || {
            workload.generate(&params)
        });
    }
}
