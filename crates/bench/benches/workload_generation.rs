//! Criterion benchmarks: trace synthesis throughput for the five
//! SPLASH-analogue workload generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcc_workloads::{Workload, WorkloadParams};

fn generators(c: &mut Criterion) {
    let params = WorkloadParams::new(16).scale(0.02).seed(3);
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for workload in Workload::ALL {
        let refs = workload.generate(&params).len() as u64;
        group.throughput(Throughput::Elements(refs));
        group.bench_with_input(
            BenchmarkId::from_parameter(workload),
            &workload,
            |b, &workload| {
                b.iter(|| workload.generate(&params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, generators);
criterion_main!(benches);
