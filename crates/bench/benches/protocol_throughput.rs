//! Criterion benchmarks: simulation throughput (references per second)
//! of the protocol engines, per protocol and per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol};
use mcc_workloads::{Workload, WorkloadParams};

fn directory_protocols(c: &mut Criterion) {
    let trace = Workload::Water.generate(&WorkloadParams::new(16).scale(0.02).seed(7));
    let config = DirectorySimConfig::default();
    let mut group = c.benchmark_group("directory_engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for protocol in [
        Protocol::Conventional,
        Protocol::Basic,
        Protocol::Aggressive,
        Protocol::PureMigratory,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, &protocol| {
                b.iter(|| DirectorySim::new(protocol, &config).run(&trace));
            },
        );
    }
    group.finish();
}

fn snooping_protocols(c: &mut Criterion) {
    let trace = Workload::Water.generate(&WorkloadParams::new(16).scale(0.02).seed(7));
    let config = BusSimConfig::default();
    let mut group = c.benchmark_group("bus_engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for protocol in [SnoopProtocol::Mesi, SnoopProtocol::Adaptive] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, &protocol| {
                b.iter(|| BusSim::new(protocol, &config).run(&trace));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, directory_protocols, snooping_protocols);
criterion_main!(benches);
