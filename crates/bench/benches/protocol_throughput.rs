//! Self-timed benchmarks: simulation throughput (references per second)
//! of the protocol engines, per protocol and per workload.

use mcc_bench::timing::bench;
use mcc_core::{DirectorySim, DirectorySimConfig, Protocol};
use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol};
use mcc_workloads::{Workload, WorkloadParams};

fn main() {
    let trace = Workload::Water.generate(&WorkloadParams::new(16).scale(0.02).seed(7));
    let refs = trace.len() as u64;

    let config = DirectorySimConfig::default();
    for protocol in [
        Protocol::Conventional,
        Protocol::Basic,
        Protocol::Aggressive,
        Protocol::PureMigratory,
    ] {
        bench(&format!("directory_engine/{protocol}"), refs, || {
            DirectorySim::new(protocol, &config).run(&trace)
        });
    }

    let bus_config = BusSimConfig::default();
    for protocol in [SnoopProtocol::Mesi, SnoopProtocol::Adaptive] {
        bench(&format!("bus_engine/{protocol}"), refs, || {
            BusSim::new(protocol, &bus_config).run(&trace)
        });
    }
}
