//! Criterion harness over the paper-table experiments: times one
//! reduced-scale section of each table so `cargo bench` exercises the
//! full regeneration pipeline. (The `table2`/`table3`/... binaries
//! produce the complete tables.)

use criterion::{criterion_group, criterion_main, Criterion};
use mcc_bench::{block_size_sweep, cache_size_sweep, exec_time_comparison, Scenario};
use mcc_trace::BlockSize;

fn scenario() -> Scenario {
    Scenario {
        scale: 0.02,
        ..Scenario::default()
    }
}

fn table2_section(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_64kb_section", |b| {
        b.iter(|| cache_size_sweep(64, &scenario()));
    });
    group.finish();
}

fn table3_section(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table3_16b_section", |b| {
        b.iter(|| block_size_sweep(BlockSize::B16, &scenario()));
    });
    group.finish();
}

fn exec_time_section(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("exec_time_all_apps", |b| {
        b.iter(|| exec_time_comparison(&scenario()));
    });
    group.finish();
}

criterion_group!(benches, table2_section, table3_section, exec_time_section);
criterion_main!(benches);
