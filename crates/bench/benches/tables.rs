//! Self-timed harness over the paper-table experiments: times one
//! reduced-scale section of each table so `cargo bench` exercises the
//! full regeneration pipeline. (The `table2`/`table3`/... binaries
//! produce the complete tables.)

use mcc_bench::timing::bench;
use mcc_bench::{block_size_sweep, cache_size_sweep, exec_time_comparison, Scenario};
use mcc_trace::BlockSize;

fn scenario() -> Scenario {
    Scenario {
        scale: 0.02,
        ..Scenario::default()
    }
}

fn main() {
    bench("tables/table2_64kb_section", 0, || {
        cache_size_sweep(64, &scenario())
    });
    bench("tables/table3_16b_section", 0, || {
        block_size_sweep(BlockSize::B16, &scenario())
    });
    bench("tables/exec_time_all_apps", 0, || {
        exec_time_comparison(&scenario())
    });
}
