//! The live service: topology, supervision, and the run loop.
//!
//! [`run_live`] wires up one thread per directory shard and one per
//! node-cache client, connected by real `mpsc` channels behind the
//! chaos layer, then supervises the run to completion:
//!
//! * **heartbeats** — every shard bumps a counter each service-loop
//!   iteration; a counter that stops moving past the stall timeout is
//!   treated like a crash;
//! * **restarts** — a crashed or stalled shard is fenced off (epoch
//!   bump) and a fresh incarnation is spawned, rebuilding the engine
//!   from the last checkpoint plus the journal suffix, up to a restart
//!   budget;
//! * **graceful degradation** — a shard that exhausts its budget is
//!   marked failed; its clients fail their in-flight references
//!   through the bounded retry path, and the run completes with the
//!   surviving shards' results salvaged;
//! * **differential verification** — after the run (and, with
//!   [`LiveConfig::verify_live`], concurrently with it) the journals
//!   replay through `mcc-check`'s lockstep checker; see
//!   [`verify`](crate::verify).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mcc_check::{Checker, CheckerConfig};
use mcc_core::{FaultPlan, Protocol, RealStorage, SimResult, Storage};
use mcc_obs::{Event, Log2Histogram, Registry, SnapshotWriter, TelemetryServer};
use mcc_workloads::{Workload, WorkloadParams};

use crate::chaos::ChannelStats;
use crate::client::{run_client, ClientCtx, ClientReport};
use crate::shard::{lock, run_incarnation, DurableCtx, ShardCtx, ShardShared};
use crate::telemetry::{LiveTelemetry, TelemetrySpec};
use crate::verify::{verify_run, VerifyOutcome};
use crate::wal::WalStats;
use crate::wire::{JournalEntry, Reply, Request};

/// Supervisor poll cadence.
const TICK: Duration = Duration::from_millis(2);

/// Crash drill: panic one shard's first incarnation mid-run to prove
/// the checkpoint-restart path end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Which shard to crash.
    pub shard: u32,
    /// Crash immediately before this many applies.
    pub after_applies: u64,
}

/// Durable write-ahead logging for the shards.
///
/// With a WAL configured, every committed journal entry is appended to
/// a per-shard on-disk log (CRC-framed, fsynced) *before* the reply is
/// acked, and the periodic engine snapshots are persisted beside it
/// with last-good rotation — so a restarted shard can rebuild from
/// disk even when storage itself misbehaves (torn tails are salvaged,
/// a corrupt snapshot falls back to the previous generation or to full
/// log replay).
#[derive(Clone)]
pub struct WalConfig {
    /// Directory holding the `shard-N.wal` / `shard-N.ckpt` files.
    /// Must already exist — [`run_live`] does not create directories.
    pub dir: PathBuf,
    /// The storage backend every shard I/O goes through; swap in a
    /// [`ChaosStorage`](mcc_core::ChaosStorage) to torture the path.
    pub storage: Arc<dyn Storage>,
}

impl WalConfig {
    /// A WAL on the real filesystem under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            storage: Arc::new(RealStorage),
        }
    }

    /// A WAL under `dir` through a caller-supplied storage backend.
    pub fn with_storage(dir: impl Into<PathBuf>, storage: Arc<dyn Storage>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            storage,
        }
    }

    /// The log path for one shard.
    pub fn wal_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard}.wal"))
    }

    /// The snapshot path for one shard (its rotated previous
    /// generation lives at the same path with a `.prev` suffix).
    pub fn snap_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard}.ckpt"))
    }
}

impl std::fmt::Debug for WalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalConfig")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

/// Configuration for a live run.
///
/// The engine geometry is fixed to the checker's canonical
/// configuration (16-byte blocks, infinite caches, round-robin
/// placement, full-map directory) so every journal replays through
/// `mcc-check` verbatim.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Protocol point under test.
    pub protocol: Protocol,
    /// Number of node-cache clients (= nodes in the simulated machine).
    pub nodes: u16,
    /// Number of directory shards.
    pub shards: usize,
    /// Workload generating each client's reference stream.
    pub workload: Workload,
    /// Workload scale factor (1.0 = the paper's size).
    pub scale: f64,
    /// Master seed: workload synthesis, chaos streams, and backoff
    /// jitter all derive from it.
    pub seed: u64,
    /// Upper bound on one workload pass per client. The paper-sized
    /// traces run millions of references — the right scale for a
    /// throughput soak, but each live reference is a blocking
    /// request/reply round trip, so tests and smoke runs cap the pass
    /// instead of relying on `scale` (which clamps at 0.1 to keep the
    /// sharing-pattern mix calibrated).
    pub max_refs_per_client: usize,
    /// The chaos plan, reusing the trace-driven injector's vocabulary:
    /// `request` rates fault the client→shard wire (with `nack_ppm`
    /// drawn shard-side), `response` rates fault the shard→client
    /// wire, `max_retries` / `max_total_backoff` bound each client's
    /// retry loop. `invalidation` rates are unused (invalidations are
    /// engine-internal here).
    pub chaos: FaultPlan,
    /// Per-attempt reply deadline.
    pub request_deadline: Duration,
    /// Wall-clock length of one backoff unit.
    pub backoff_unit: Duration,
    /// Checkpoint every this many applies per shard (0 = never).
    pub checkpoint_every: u64,
    /// Shard inbox poll / heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// Declare a shard stalled after this long without a heartbeat.
    pub stall_timeout: Duration,
    /// Restart budget per shard.
    pub max_restarts: u32,
    /// How long to wait for shards to drain after all clients exit.
    pub shutdown_grace: Duration,
    /// `Some(d)`: soak mode — clients cycle their reference stream
    /// for `d`, then stop at the next reference boundary.
    pub soak: Option<Duration>,
    /// Sample the journals with a concurrent checker while running.
    pub verify_live: bool,
    /// Optional crash drill.
    pub kill: Option<KillSpec>,
    /// Optional durable per-shard write-ahead log.
    pub wal: Option<WalConfig>,
    /// Optional live telemetry plane (HTTP endpoint + snapshot file).
    pub telemetry: Option<TelemetrySpec>,
}

impl LiveConfig {
    /// A small, fast, fault-free configuration; override fields as
    /// needed.
    pub fn new(protocol: Protocol, nodes: u16, shards: usize) -> LiveConfig {
        LiveConfig {
            protocol,
            nodes,
            shards,
            workload: Workload::Mp3d,
            scale: 0.02,
            seed: 1,
            max_refs_per_client: 2_000,
            chaos: FaultPlan::reliable(1),
            request_deadline: Duration::from_millis(100),
            backoff_unit: Duration::from_micros(20),
            checkpoint_every: 64,
            heartbeat_interval: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(1500),
            max_restarts: 3,
            shutdown_grace: Duration::from_secs(10),
            soak: None,
            verify_live: false,
            kill: None,
            wal: None,
            telemetry: None,
        }
    }
}

/// One shard's contribution to the final report.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The shard id.
    pub shard: u32,
    /// Final engine result, or why the shard was given up on.
    pub result: Result<SimResult, String>,
    /// How many times the supervisor restarted it.
    pub restarts: u32,
    /// The linearized journal (always salvaged, even on failure).
    pub journal: Vec<JournalEntry>,
    /// The committed event narration.
    pub events: Vec<Event>,
    /// Reply-direction chaos stats.
    pub reply_chaos: ChannelStats,
    /// NACKs the shard's simulated controller issued.
    pub nacks_sent: u64,
    /// Durable-WAL recovery statistics (zero when no WAL is
    /// configured).
    pub wal: WalStats,
}

/// Everything a live run produced.
#[derive(Clone, Debug)]
pub struct LiveReport {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Node-cache client count.
    pub nodes: u16,
    /// Per-client reports.
    pub clients: Vec<ClientReport>,
    /// Per-shard outcomes.
    pub shards: Vec<ShardOutcome>,
    /// Wall-clock time of the whole run (including drain).
    pub wall: Duration,
    /// Post-run differential verification (with any in-run sampling
    /// violations folded in).
    pub verify: VerifyOutcome,
    /// Journal entries the in-run sampler checked (0 unless
    /// [`LiveConfig::verify_live`]).
    pub live_verified_steps: u64,
    /// Final snapshot of the telemetry plane, when one was on — the
    /// same registry a scraper saw, for end-of-run reconciliation.
    pub telemetry: Option<Registry>,
}

impl LiveReport {
    /// Acknowledged operations across all clients.
    pub fn ops(&self) -> u64 {
        self.clients.iter().map(|c| c.ops).sum()
    }

    /// Acknowledged writes across all clients.
    pub fn acked_writes(&self) -> u64 {
        self.clients.iter().map(|c| c.acked_writes).sum()
    }

    /// Sustained acknowledged throughput over the run's wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops() as f64 / secs
        }
    }

    /// All client latencies merged into one histogram (microseconds).
    pub fn latency_us(&self) -> Log2Histogram {
        let mut merged = Log2Histogram::new();
        for c in &self.clients {
            merged.merge(&c.latency_us);
        }
        merged
    }

    /// Total failed-then-retried attempts across clients.
    pub fn retries(&self) -> u64 {
        self.clients.iter().map(|c| c.retries).sum()
    }

    /// Total NACKs clients received.
    pub fn nacks(&self) -> u64 {
        self.clients.iter().map(|c| c.nacks).sum()
    }

    /// Total request deadlines that expired.
    pub fn timeouts(&self) -> u64 {
        self.clients.iter().map(|c| c.timeouts).sum()
    }

    /// Total restarts across shards.
    pub fn restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Journal length across shards (references actually applied).
    pub fn applied(&self) -> u64 {
        self.shards.iter().map(|s| s.journal.len() as u64).sum()
    }

    /// Request-direction chaos stats summed over clients.
    pub fn request_chaos(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for c in &self.clients {
            total.absorb(&c.chaos);
        }
        total
    }

    /// Reply-direction chaos stats summed over shards.
    pub fn reply_chaos(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for s in &self.shards {
            total.absorb(&s.reply_chaos);
        }
        total
    }

    /// Durable-WAL recovery stats summed over shards.
    pub fn wal(&self) -> WalStats {
        let mut total = WalStats::default();
        for s in &self.shards {
            total.absorb(&s.wal);
        }
        total
    }

    /// Shards that were given up on.
    pub fn failed_shards(&self) -> Vec<u32> {
        self.shards
            .iter()
            .filter(|s| s.result.is_err())
            .map(|s| s.shard)
            .collect()
    }

    /// Client-side errors (exhausted retries, livelock, hangups).
    pub fn client_errors(&self) -> Vec<(u16, String)> {
        self.clients
            .iter()
            .filter_map(|c| c.error.as_ref().map(|e| (c.node, e.clone())))
            .collect()
    }

    /// A fully healthy run: every client finished, every shard
    /// survived (restarts are fine), and verification passed.
    pub fn ok(&self) -> bool {
        self.client_errors().is_empty() && self.failed_shards().is_empty() && self.verify.ok()
    }
}

/// Supervisor-side view of one shard.
struct ShardSup {
    shared: Arc<ShardShared>,
    ctx: Arc<ShardCtx>,
    epoch: u64,
    restarts: u32,
    done: Option<Result<SimResult, String>>,
    hb_last: u64,
    hb_moved: Instant,
}

/// Runs the live service to completion. `Err` means the configuration
/// itself was unusable; everything that can go wrong *during* a run is
/// reported inside the returned [`LiveReport`].
pub fn run_live(cfg: &LiveConfig) -> Result<LiveReport, String> {
    // The live plane runs one OS thread per node client, which is what
    // bounds the count here — the directory itself spills arbitrarily
    // wide copy sets. Out-of-core scale runs belong to the streaming
    // engine, not the live service.
    if cfg.nodes == 0 || cfg.nodes > 1024 {
        return Err(format!("nodes must be in 1..=1024, got {}", cfg.nodes));
    }
    if cfg.shards == 0 || cfg.shards > 256 {
        return Err(format!("shards must be in 1..=256, got {}", cfg.shards));
    }
    if let Some(kill) = cfg.kill {
        if kill.shard as usize >= cfg.shards {
            return Err(format!("kill.shard {} out of range", kill.shard));
        }
    }

    let started = Instant::now();

    // --- Telemetry plane (optional). ---
    let telemetry = cfg
        .telemetry
        .as_ref()
        .map(|_| Arc::new(LiveTelemetry::new(cfg.shards)));
    let mut tele_server = None;
    let mut tele_writer = None;
    if let (Some(spec), Some(lt)) = (cfg.telemetry.as_ref(), telemetry.as_ref()) {
        if let Some(addr) = &spec.addr {
            let server = TelemetryServer::serve(Arc::clone(&lt.plane), addr)
                .map_err(|e| format!("telemetry endpoint {addr}: {e}"))?;
            if let Some(tx) = &spec.notify_addr {
                let _ = tx.send(server.addr());
            }
            tele_server = Some(server);
        }
        if let Some(path) = &spec.snapshot_path {
            let writer = SnapshotWriter::start(Arc::clone(&lt.plane), path, spec.snapshot_every)
                .map_err(|e| format!("telemetry snapshots {}: {e}", path.display()))?;
            tele_writer = Some(writer);
        }
    }

    // --- Workload: one program-order reference stream per client. ---
    let trace = cfg.workload.generate(
        &WorkloadParams::new(cfg.nodes)
            .scale(cfg.scale)
            .seed(cfg.seed),
    );
    let mut per_node: Vec<Vec<mcc_trace::MemRef>> = trace
        .split_by_node()
        .into_iter()
        .map(|t| t.as_slice().to_vec())
        .collect();
    // A node with no references still gets a (trivially finished)
    // client, so accounting below is uniform.
    per_node.resize(cfg.nodes as usize, Vec::new());
    per_node.truncate(cfg.nodes as usize);
    for refs in &mut per_node {
        refs.truncate(cfg.max_refs_per_client);
    }

    // --- Topology: one inbox per shard, one reply channel per client. ---
    let mut shard_sups: Vec<ShardSup> = Vec::with_capacity(cfg.shards);
    let mut request_txs: Vec<Sender<Request>> = Vec::with_capacity(cfg.shards);
    let (exit_tx, exit_rx) = mpsc::channel::<(u32, u64, Result<SimResult, String>)>();
    let mut reply_txs: Vec<Sender<Reply>> = Vec::with_capacity(cfg.nodes as usize);
    let mut reply_rxs = Vec::with_capacity(cfg.nodes as usize);
    for _ in 0..cfg.nodes {
        let (tx, rx) = mpsc::channel::<Reply>();
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }
    let reply_txs = Arc::new(reply_txs);

    for shard in 0..cfg.shards as u32 {
        let (tx, rx) = mpsc::channel::<Request>();
        request_txs.push(tx);
        let shared = Arc::new(ShardShared::new(rx));
        let ctx = Arc::new(ShardCtx {
            shard,
            protocol: cfg.protocol,
            nodes: cfg.nodes,
            chaos_seed: cfg.chaos.seed,
            reply_rates: cfg.chaos.response,
            nack_ppm: cfg.chaos.request.nack_ppm,
            checkpoint_every: cfg.checkpoint_every,
            heartbeat_interval: cfg.heartbeat_interval,
            kill: cfg.kill.map(|k| (k.shard, k.after_applies)),
            durable: cfg.wal.as_ref().map(|w| DurableCtx {
                storage: Arc::clone(&w.storage),
                wal_path: w.wal_path(shard),
                snap_path: w.snap_path(shard),
            }),
            telemetry: telemetry.clone(),
        });
        spawn_incarnation(&ctx, &shared, &reply_txs, 0, &exit_tx);
        shard_sups.push(ShardSup {
            shared,
            ctx,
            epoch: 0,
            restarts: 0,
            done: None,
            hb_last: 0,
            hb_moved: Instant::now(),
        });
    }

    // --- Clients. ---
    let stop = Arc::new(AtomicBool::new(false));
    let (client_tx, client_rx) = mpsc::channel::<ClientReport>();
    let mut client_handles = Vec::with_capacity(cfg.nodes as usize);
    for (node, (refs, reply_rx)) in per_node
        .into_iter()
        .zip(reply_rxs)
        .enumerate()
        .take(cfg.nodes as usize)
    {
        let ctx = ClientCtx {
            node: node as u16,
            shards: cfg.shards,
            refs,
            chaos_seed: cfg.chaos.seed,
            request_rates: cfg.chaos.request,
            deadline: cfg.request_deadline,
            max_retries: cfg.chaos.max_retries,
            max_total_backoff: cfg.chaos.max_total_backoff,
            backoff_unit: cfg.backoff_unit,
            jitter_seed: cfg.chaos.seed,
            soak: cfg.soak.is_some(),
            stop: Arc::clone(&stop),
            telemetry: telemetry.clone(),
        };
        let to_shards = request_txs.clone();
        let tx = client_tx.clone();
        let handle = thread::Builder::new()
            .name(format!("mcc-live-client-{node}"))
            .spawn(move || {
                let report = run_client(ctx, to_shards, reply_rx);
                let _ = tx.send(report);
            })
            .map_err(|e| format!("spawn client {node}: {e}"))?;
        client_handles.push(handle);
    }
    // The supervisor keeps no request senders: once every client has
    // exited, shard inboxes disconnect and incarnations drain out.
    drop(request_txs);
    drop(client_tx);

    // --- Optional in-run sampling verifier. ---
    let verifier = cfg
        .verify_live
        .then(|| spawn_live_verifier(cfg, &shard_sups));

    // Soak duration means *live traffic* time: the clock starts once
    // the clients are up, not at process start, so workload generation
    // (seconds at paper scale) can never eat the soak window.
    let soak_started = Instant::now();

    // --- Supervision loop. ---
    let mut client_reports: Vec<Option<ClientReport>> = (0..cfg.nodes).map(|_| None).collect();
    let mut clients_remaining = cfg.nodes as usize;
    let mut soak_stopped = false;
    let mut drain_started: Option<Instant> = None;
    let mut health_tick = 0u32;
    loop {
        // Supervisor-computed gauges (lag, restarts), throttled to
        // ~every 25 ticks (50ms): cheap, and fast enough for a scraper.
        if let Some(lt) = &telemetry {
            health_tick += 1;
            if health_tick % 25 == 1 {
                lt.update_shard_health(shard_sups.iter().map(|s| s.restarts));
            }
        }
        if let Some(soak) = cfg.soak {
            if !soak_stopped && soak_started.elapsed() >= soak {
                stop.store(true, Ordering::Relaxed);
                soak_stopped = true;
            }
        }

        while let Ok(report) = client_rx.try_recv() {
            let node = report.node as usize;
            if client_reports[node].is_none() {
                clients_remaining -= 1;
            }
            client_reports[node] = Some(report);
        }

        while let Ok((shard, epoch, result)) = exit_rx.try_recv() {
            let sup = &mut shard_sups[shard as usize];
            if epoch != sup.epoch || sup.done.is_some() {
                continue; // a fenced-out zombie reporting in
            }
            match result {
                Ok(r) => sup.done = Some(Ok(r)),
                Err(e) => restart_or_fail(sup, e, cfg.max_restarts, &reply_txs, &exit_tx),
            }
        }

        let now = Instant::now();
        for sup in shard_sups.iter_mut().filter(|s| s.done.is_none()) {
            let hb = sup.shared.heartbeat.load(Ordering::Relaxed);
            if hb != sup.hb_last {
                sup.hb_last = hb;
                sup.hb_moved = now;
            } else if now.duration_since(sup.hb_moved) > cfg.stall_timeout {
                let msg = format!(
                    "shard {}: stalled (no heartbeat for {:?})",
                    sup.ctx.shard, cfg.stall_timeout
                );
                sup.hb_moved = now;
                restart_or_fail(sup, msg, cfg.max_restarts, &reply_txs, &exit_tx);
            }
        }

        let shards_done = shard_sups.iter().all(|s| s.done.is_some());
        if clients_remaining == 0 && shards_done {
            break;
        }
        if clients_remaining == 0 {
            let since = *drain_started.get_or_insert(now);
            if now.duration_since(since) > cfg.shutdown_grace {
                for sup in shard_sups.iter_mut().filter(|s| s.done.is_none()) {
                    sup.done = Some(Err(format!(
                        "shard {}: failed to drain within {:?}",
                        sup.ctx.shard, cfg.shutdown_grace
                    )));
                }
            }
        }
        thread::sleep(TICK);
    }
    for handle in client_handles {
        let _ = handle.join();
    }
    let (live_verified_steps, live_violations) = match verifier {
        Some(v) => v.finish(),
        None => (0, Vec::new()),
    };
    let wall = started.elapsed();

    // Settle the telemetry plane: final gauge tick, cut the report's
    // registry, then let the writer append its final line (all
    // counters are settled by now, so file and report agree) and stop
    // serving.
    let telemetry_registry = telemetry.as_ref().map(|lt| {
        lt.update_shard_health(shard_sups.iter().map(|s| s.restarts));
        lt.plane.snapshot()
    });
    if let Some(writer) = tele_writer.take() {
        let _ = writer.finish();
    }
    drop(tele_server);

    // --- Salvage journals and assemble the report. ---
    let mut shards_out = Vec::with_capacity(cfg.shards);
    for sup in shard_sups {
        // Fence out any lingering zombie before reading the journal.
        sup.shared.epoch.store(u64::MAX, Ordering::SeqCst);
        let journal = lock(&sup.shared.journal);
        shards_out.push(ShardOutcome {
            shard: sup.ctx.shard,
            result: sup
                .done
                .unwrap_or_else(|| Err("shard never finished".into())),
            restarts: sup.restarts,
            journal: journal.entries.clone(),
            events: journal.events.clone(),
            reply_chaos: journal.reply_chaos,
            nacks_sent: journal.nacks_sent,
            wal: journal.wal,
        });
    }
    let clients: Vec<ClientReport> = client_reports
        .into_iter()
        .map(|r| r.expect("all clients reported"))
        .collect();

    let mut verify = verify_run(cfg.protocol, cfg.nodes, &shards_out, &clients);
    for v in live_violations {
        verify.violations.push(format!("live sampler: {v}"));
    }

    Ok(LiveReport {
        protocol: cfg.protocol,
        nodes: cfg.nodes,
        clients,
        shards: shards_out,
        wall,
        verify,
        live_verified_steps,
        telemetry: telemetry_registry,
    })
}

/// Spawns one incarnation thread (detached; it reports through
/// `exit_tx` and is fenced by the epoch).
fn spawn_incarnation(
    ctx: &Arc<ShardCtx>,
    shared: &Arc<ShardShared>,
    reply_txs: &Arc<Vec<Sender<Reply>>>,
    epoch: u64,
    exit_tx: &Sender<(u32, u64, Result<SimResult, String>)>,
) {
    let shard = ctx.shard;
    let ctx = Arc::clone(ctx);
    let shared = Arc::clone(shared);
    let reply_txs = Arc::clone(reply_txs);
    let thread_tx = exit_tx.clone();
    let spawned = thread::Builder::new()
        .name(format!("mcc-live-shard-{shard}"))
        .spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_incarnation(&ctx, &shared, &reply_txs, epoch)
            }));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => Err(format!("shard {shard}: panicked: {}", panic_msg(&payload))),
            };
            let _ = thread_tx.send((shard, epoch, result));
        });
    if let Err(e) = spawned {
        let _ = exit_tx.send((shard, epoch, Err(format!("spawn failed: {e}"))));
    }
}

/// Restart a failed shard within budget, or mark it failed for good.
fn restart_or_fail(
    sup: &mut ShardSup,
    error: String,
    max_restarts: u32,
    reply_txs: &Arc<Vec<Sender<Reply>>>,
    exit_tx: &Sender<(u32, u64, Result<SimResult, String>)>,
) {
    if sup.restarts < max_restarts {
        sup.restarts += 1;
        sup.epoch += 1;
        // Fence first, then spawn: a zombie must see the new epoch
        // before the replacement touches the journal.
        sup.shared.epoch.store(sup.epoch, Ordering::SeqCst);
        sup.hb_moved = Instant::now();
        spawn_incarnation(&sup.ctx, &sup.shared, reply_txs, sup.epoch, exit_tx);
    } else {
        sup.done = Some(Err(format!(
            "{error} (restart budget of {max_restarts} exhausted)"
        )));
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle to the in-run sampling verifier thread.
struct LiveVerifier {
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<(u64, Vec<String>)>,
}

impl LiveVerifier {
    fn finish(self) -> (u64, Vec<String>) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .join()
            .unwrap_or((0, vec!["live sampler thread panicked".into()]))
    }
}

/// Spawns a thread that incrementally replays each shard's journal
/// through its own lockstep checker while the service runs, surfacing
/// rule violations within milliseconds of being committed instead of
/// at the end of the run. Restarts are invisible to it: the journal is
/// append-only across incarnations.
fn spawn_live_verifier(cfg: &LiveConfig, shard_sups: &[ShardSup]) -> LiveVerifier {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let shareds: Vec<Arc<ShardShared>> = shard_sups.iter().map(|s| Arc::clone(&s.shared)).collect();
    let protocol = cfg.protocol;
    let nodes = cfg.nodes;
    let handle = thread::Builder::new()
        .name("mcc-live-verifier".to_string())
        .spawn(move || {
            let mut checkers: Vec<Option<Checker>> = (0..shareds.len())
                .map(|_| Some(Checker::new(&CheckerConfig::new(protocol, nodes))))
                .collect();
            let mut cursors = vec![0usize; shareds.len()];
            let mut checked = 0u64;
            let mut violations = Vec::new();
            loop {
                let stopping = stop_flag.load(Ordering::Relaxed);
                for (i, shared) in shareds.iter().enumerate() {
                    let pending: Vec<JournalEntry> = {
                        let journal = lock(&shared.journal);
                        journal.entries[cursors[i]..].to_vec()
                    };
                    let Some(checker) = checkers[i].as_mut() else {
                        cursors[i] += pending.len();
                        continue;
                    };
                    let mut poisoned = false;
                    for entry in pending {
                        cursors[i] += 1;
                        match checker.check_step(entry.mref) {
                            Ok(info) => {
                                checked += 1;
                                if info.kind != entry.kind || info.messages != entry.messages {
                                    violations.push(format!(
                                        "shard {i} step {}: live {:?} vs replay {:?}",
                                        entry.step, entry.kind, info.kind
                                    ));
                                }
                            }
                            Err(v) => {
                                violations.push(format!("shard {i}: {v}"));
                                poisoned = true;
                                break;
                            }
                        }
                    }
                    if poisoned {
                        checkers[i] = None;
                    }
                }
                if stopping {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            (checked, violations)
        })
        .expect("spawn live verifier");
    LiveVerifier { stop, handle }
}
