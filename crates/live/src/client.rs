//! Client threads: closed-loop load generators with bounded retry.
//!
//! Each client replays one node's slice of the workload trace against
//! the service, one reference at a time: route the reference to its
//! block's home shard, send the request through the chaos layer, and
//! wait for the matching reply. A NACK or a deadline expiry triggers a
//! retry of the *same* sequence number after a jittered exponential
//! backoff (the same [`jittered_backoff_units`] the trace-driven
//! simulator charges); a retry budget and a cumulative-backoff
//! livelock watchdog bound how long a client can chase one reference
//! before reporting failure, so a dead shard degrades the run instead
//! of hanging it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcc_check::CHECK_BLOCK_SIZE;
use mcc_core::{jittered_backoff_units, FaultRates};
use mcc_obs::{Log2Histogram, SpanId};
use mcc_trace::{shard_of_block, MemRef};

use crate::chaos::{ChannelStats, ChaosChannel};
use crate::shard::derive_seed;
use crate::telemetry::LiveTelemetry;
use crate::wire::{Reply, Request};

/// What one client did, returned to the supervisor when it exits.
#[derive(Clone, Debug)]
pub struct ClientReport {
    /// The node this client simulates.
    pub node: u16,
    /// References acknowledged (applied exactly once by the service).
    pub ops: u64,
    /// Acknowledged writes — the write-count oracle's client side.
    pub acked_writes: u64,
    /// Attempts that failed (NACK or timeout) and were retried.
    pub retries: u64,
    /// NACK replies received for the in-flight sequence.
    pub nacks: u64,
    /// Request deadlines that expired.
    pub timeouts: u64,
    /// Total jittered backoff charged, in abstract units.
    pub backoff_units: u64,
    /// End-to-end request latency, microseconds, log2-bucketed.
    pub latency_us: Log2Histogram,
    /// Request-side chaos stats, summed over this client's channels.
    pub chaos: ChannelStats,
    /// Why the client stopped early, if it did.
    pub error: Option<String>,
}

/// Immutable client configuration.
pub(crate) struct ClientCtx {
    pub node: u16,
    pub shards: usize,
    /// This node's references, in program order.
    pub refs: Vec<MemRef>,
    /// Base chaos seed (channel streams derive from it).
    pub chaos_seed: u64,
    /// Fault rates for the client→shard request direction.
    pub request_rates: FaultRates,
    /// Per-attempt reply deadline.
    pub deadline: Duration,
    /// Retry budget per reference.
    pub max_retries: u32,
    /// Livelock watchdog: max cumulative backoff units per reference.
    pub max_total_backoff: u64,
    /// Wall-clock length of one backoff unit.
    pub backoff_unit: Duration,
    /// Seed for the jittered backoff hash (shared service-wide so the
    /// schedule is reproducible).
    pub jitter_seed: u64,
    /// When true, cycle the reference slice until `stop` is raised.
    pub soak: bool,
    /// Soak stop flag, raised by the supervisor.
    pub stop: Arc<AtomicBool>,
    /// Live telemetry handles, when the plane is on.
    pub telemetry: Option<Arc<LiveTelemetry>>,
}

/// Runs one client to completion. Never blocks unboundedly: every wait
/// is `recv_timeout` and every retry loop is budgeted.
pub(crate) fn run_client(
    ctx: ClientCtx,
    to_shards: Vec<Sender<Request>>,
    inbox: Receiver<Reply>,
) -> ClientReport {
    let mut channels: Vec<ChaosChannel<Request>> = to_shards
        .into_iter()
        .enumerate()
        .map(|(shard, tx)| {
            let c = ChaosChannel::new(
                tx,
                ctx.request_rates,
                derive_seed(
                    ctx.chaos_seed,
                    0xC1,
                    (u64::from(ctx.node) << 16) | shard as u64,
                    0,
                ),
            );
            match &ctx.telemetry {
                Some(lt) => c.with_telemetry(
                    lt.req_chaos.clone(),
                    Some(lt.shards[shard].queue_depth.clone()),
                ),
                None => c,
            }
        })
        .collect();

    let mut report = ClientReport {
        node: ctx.node,
        ops: 0,
        acked_writes: 0,
        retries: 0,
        nacks: 0,
        timeouts: 0,
        backoff_units: 0,
        latency_us: Log2Histogram::new(),
        chaos: ChannelStats::default(),
        error: None,
    };

    let mut seq = 0u64;
    let mut idx = 0usize;
    'refs: loop {
        if ctx.refs.is_empty() {
            break;
        }
        if idx >= ctx.refs.len() {
            if ctx.soak && !ctx.stop.load(Ordering::Relaxed) {
                idx = 0;
            } else {
                break;
            }
        }
        if ctx.soak && ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        let r = ctx.refs[idx];
        idx += 1;
        seq += 1;
        let shard = shard_of_block(r.addr.block(CHECK_BLOCK_SIZE), ctx.shards);

        // One span per logical operation: retransmits of the same seq
        // share it, so per-stage latencies attribute to the op.
        let span = SpanId::mint(ctx.node, seq);
        let started = Instant::now();
        let mut attempt = 0u32;
        let mut spent_units = 0u64;
        loop {
            if !channels[shard].send(Request {
                client: ctx.node,
                seq,
                mref: r,
                attempt,
                span,
                queued_at: Instant::now(),
            }) {
                report.error = Some(format!("seq {seq}: shard {shard} inbox closed"));
                break 'refs;
            }

            // Wait out this attempt's deadline for the matching reply.
            let deadline = Instant::now() + ctx.deadline;
            let outcome = loop {
                let now = Instant::now();
                if now >= deadline {
                    break Err(());
                }
                match inbox.recv_timeout(deadline - now) {
                    Ok(reply) if reply.seq() < seq => continue, // straggler
                    Ok(Reply::Done {
                        seq: s,
                        kind: _,
                        messages: _,
                        step: _,
                    }) if s == seq => break Ok(true),
                    Ok(Reply::Nack { seq: s }) if s == seq => break Ok(false),
                    Ok(reply) => {
                        // A reply from the future is impossible under
                        // the blocking protocol.
                        report.error = Some(format!("seq {seq}: reply from the future: {reply:?}"));
                        break Ok(true);
                    }
                    Err(RecvTimeoutError::Timeout) => break Err(()),
                    Err(RecvTimeoutError::Disconnected) => {
                        report.error = Some(format!("seq {seq}: reply channel closed"));
                        break Ok(true);
                    }
                }
            };
            if report.error.is_some() {
                break 'refs;
            }
            match outcome {
                Ok(true) => {
                    report.ops += 1;
                    if r.op.is_write() {
                        report.acked_writes += 1;
                    }
                    let latency = started.elapsed().as_micros() as u64;
                    report.latency_us.record(latency);
                    if let Some(lt) = &ctx.telemetry {
                        lt.ops_acked.fetch_add(1, Ordering::Relaxed);
                        if r.op.is_write() {
                            lt.acked_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        lt.total.record(latency);
                    }
                    break;
                }
                Ok(false) => {
                    report.nacks += 1;
                    if let Some(lt) = &ctx.telemetry {
                        lt.nacks.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(()) => {
                    report.timeouts += 1;
                    if let Some(lt) = &ctx.telemetry {
                        lt.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            // Failed attempt: budget check, then jittered backoff.
            if attempt >= ctx.max_retries {
                report.error = Some(format!(
                    "seq {seq}: retry budget exhausted after {attempt} retries"
                ));
                break 'refs;
            }
            let units =
                jittered_backoff_units(ctx.jitter_seed, (u64::from(ctx.node) << 32) | seq, attempt);
            spent_units += units;
            report.backoff_units += units;
            if spent_units > ctx.max_total_backoff {
                report.error = Some(format!(
                    "seq {seq}: livelock watchdog: {spent_units} backoff units"
                ));
                break 'refs;
            }
            let slept = Instant::now();
            std::thread::sleep(ctx.backoff_unit.saturating_mul(units.min(4096) as u32));
            if let Some(lt) = &ctx.telemetry {
                lt.backoff.record(slept.elapsed().as_micros() as u64);
                lt.backoff_units.fetch_add(units, Ordering::Relaxed);
                lt.retries.fetch_add(1, Ordering::Relaxed);
            }
            report.retries += 1;
            attempt += 1;
        }
    }

    for c in channels.iter_mut() {
        c.flush();
        report.chaos.absorb(&c.stats);
    }
    report
}
