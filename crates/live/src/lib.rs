//! The coherence protocol as a *live* concurrent service.
//!
//! Everywhere else in this workspace the directory protocol runs as a
//! trace-driven simulation inside one call stack. This crate runs it
//! as a real system: one thread per directory shard and one per
//! node-cache client, connected by real `std::sync::mpsc` channels,
//! with faults injected on the wire itself — messages dropped,
//! NACKed, delayed (and thereby reordered), and duplicated by a
//! [`ChaosChannel`] driven by the same
//! [`FaultPlan`](mcc_core::FaultPlan) vocabulary as the trace-driven
//! injector.
//!
//! The interesting part is keeping the *paper's* guarantees while the
//! transport misbehaves and shards crash:
//!
//! * clients retry with the same seeded jittered exponential backoff
//!   the simulator charges, under a retry budget and a livelock
//!   watchdog ([`client`]);
//! * per-client sequence numbers give exactly-once application over
//!   the lossy wire ([`wire`]);
//! * each shard journals its linearized reference stream; the journal
//!   is simultaneously the write-ahead log that crash restarts replay
//!   (from the last [`EngineSnapshot`](mcc_core::EngineSnapshot)
//!   checkpoint) and the evidence that the live run obeyed the §2
//!   detection/demotion rules and Table-1 message accounting — proven
//!   by replaying it through `mcc-check`'s lockstep
//!   engine/specification checker ([`verify`]);
//! * a supervisor watches heartbeats and restarts stalled or panicked
//!   shards behind an epoch fence, degrading gracefully when a shard
//!   is unrecoverable ([`service`]).
//!
//! # Example
//!
//! ```
//! use mcc_live::{run_live, LiveConfig};
//! use mcc_core::Protocol;
//!
//! let mut cfg = LiveConfig::new(Protocol::Basic, 4, 2);
//! cfg.max_refs_per_client = 100;
//! let report = run_live(&cfg).expect("valid config");
//! assert!(report.ok(), "{:?}", report.verify.violations);
//! assert_eq!(report.ops(), report.applied());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod chaos;
pub mod client;
pub mod service;
pub mod telemetry;
pub mod verify;
pub mod wal;
pub mod wire;

mod shard;

pub use artifacts::{
    events_path, journal_path, summary_kv, summary_path, telemetry_path, write_artifacts,
    write_artifacts_on,
};
pub use chaos::{ChannelStats, ChaosChannel, SharedChannelStats};
pub use client::ClientReport;
pub use service::{run_live, KillSpec, LiveConfig, LiveReport, ShardOutcome, WalConfig};
pub use telemetry::TelemetrySpec;
pub use verify::{verify_run, VerifyOutcome};
pub use wal::{open_wal, read_wal, SalvagedWal, WalRecord, WalStats};
pub use wire::{JournalEntry, Reply, Request};
