//! The on-disk per-shard write-ahead log.
//!
//! Until this module, a shard's journal — the service's source of
//! truth — lived only in process memory: a supervisor restart could
//! replay it, but a *process* crash (or a torture-harness power cut)
//! lost it. Here every committed entry is appended to a per-shard WAL
//! file and fsynced **before** the in-memory journal is extended and
//! the client acked, all under the journal lock and the epoch fence,
//! so the durable log is always a superset of what any client was ever
//! told.
//!
//! # Framing
//!
//! A WAL file opens with an 8-byte magic/version header and continues
//! as a sequence of self-checking frames:
//!
//! ```text
//! "MCCW" 0x01 0x00 0x00 0x00      file header
//! u32   payload length            per frame
//! u64   FNV-1a-64 of the payload
//! [u8]  payload (journal entry + the events its apply produced)
//! ```
//!
//! # Torn-tail salvage
//!
//! A crash can land mid-append: the durable file then ends in a torn
//! frame (short length, short payload, or a checksum that does not
//! match). On restart [`open_wal`] scans frame by frame from the
//! start, keeps the longest prefix of fully valid frames, and
//! truncates the file back to it (atomically, via a sibling tmp file
//! and rename). The argument that this is *correct* and not data
//! loss: a frame is only followed by an ack after its fsync returned,
//! so a torn final frame was never acked — the client is still
//! retrying that sequence number and will re-apply it through the
//! normal exactly-once path. Everything acked lives in the valid
//! prefix.
//!
//! # Snapshots
//!
//! Replay time is bounded by a per-shard engine snapshot file written
//! every [`checkpoint_every`](crate::LiveConfig::checkpoint_every)
//! applies with the same fsync-and-rotate discipline as
//! [`Checkpoint::save`](mcc_core::Checkpoint::save) (`.ckpt` ↔
//! `.ckpt.prev`), and loaded with the same fall-back-to-previous
//! recovery. A snapshot that fails to decode, or that claims to cover
//! more entries than the salvaged WAL holds (a lying disk lost WAL
//! bytes after the snapshot was cut), is rejected in favour of the
//! previous generation or a full-log replay.

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::time::Instant;

use mcc_core::checkpoint::{
    fnv1a_64, prev_path, put_u16, put_u32, put_u64, read_envelope, write_envelope, PayloadReader,
};
use mcc_core::{EngineSnapshot, MessageCount, SnapshotGeneration, StepKind, Storage};
use mcc_obs::{AtomicHistogram, Event};
use mcc_trace::{Addr, MemOp, MemRef, NodeId};

use crate::wire::JournalEntry;

/// Magic + format version header of a WAL file: `MCCW`, version 1,
/// three bytes of padding (the MCCT/MCCK convention).
pub const WAL_MAGIC: [u8; 8] = *b"MCCW\x01\0\0\0";

/// Magic + format version header of a per-shard snapshot file.
pub const SHARD_SNAPSHOT_MAGIC: [u8; 8] = *b"MCCS\x01\0\0\0";

/// One committed record: the journal entry plus the engine events its
/// apply produced (committed atomically with it).
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// The applied reference.
    pub entry: JournalEntry,
    /// The events staged by that apply (including any
    /// `CheckpointSaved` framing committed with it).
    pub events: Vec<Event>,
}

/// What [`open_wal`] recovered from a shard's WAL file.
#[derive(Clone, Debug, Default)]
pub struct SalvagedWal {
    /// Every fully valid record, in commit order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away (0 on a clean file).
    pub dropped_bytes: u64,
    /// Whether the file did not exist (a fresh shard).
    pub created: bool,
}

/// Durability counters a shard accumulates across incarnations,
/// surfaced in [`ShardOutcome`](crate::ShardOutcome) and the run
/// summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Incarnation starts that found (and truncated) a torn tail.
    pub torn_tails: u64,
    /// Total torn-tail bytes truncated.
    pub dropped_bytes: u64,
    /// Entries recovered from the durable WAL that the in-memory
    /// journal had not yet committed (crash between fsync and ack).
    pub reconciled: u64,
    /// Engine rebuilds that fell back to the rotated `.ckpt.prev`
    /// snapshot generation.
    pub prev_snapshot_loads: u64,
}

impl WalStats {
    /// Folds another shard's counters into this one.
    pub fn absorb(&mut self, other: &WalStats) {
        self.torn_tails += other.torn_tails;
        self.dropped_bytes += other.dropped_bytes;
        self.reconciled += other.reconciled;
        self.prev_snapshot_loads += other.prev_snapshot_loads;
    }
}

// ---------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------

fn step_kind_to_u8(kind: StepKind) -> u8 {
    match kind {
        StepKind::ReadHit => 0,
        StepKind::SilentWrite => 1,
        StepKind::GrantedWrite => 2,
        StepKind::ExclusiveUpgrade => 3,
        StepKind::SharedUpgrade => 4,
        StepKind::ReadMissReplicate => 5,
        StepKind::ReadMissMigrate => 6,
        StepKind::WriteMiss => 7,
    }
}

fn step_kind_from_u8(v: u8) -> Option<StepKind> {
    Some(match v {
        0 => StepKind::ReadHit,
        1 => StepKind::SilentWrite,
        2 => StepKind::GrantedWrite,
        3 => StepKind::ExclusiveUpgrade,
        4 => StepKind::SharedUpgrade,
        5 => StepKind::ReadMissReplicate,
        6 => StepKind::ReadMissMigrate,
        7 => StepKind::WriteMiss,
        _ => return None,
    })
}

/// Serializes one record into a frame payload.
fn encode_record(entry: &JournalEntry, events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u16(&mut out, entry.client);
    put_u64(&mut out, entry.seq);
    put_u16(&mut out, entry.mref.node.index() as u16);
    out.push(u8::from(entry.mref.op.is_write()));
    put_u64(&mut out, entry.mref.addr.get());
    out.push(step_kind_to_u8(entry.kind));
    put_u64(&mut out, entry.messages.control);
    put_u64(&mut out, entry.messages.data);
    put_u64(&mut out, entry.step);
    put_u32(&mut out, events.len() as u32);
    for event in events {
        let json = event.to_json();
        put_u32(&mut out, json.len() as u32);
        out.extend_from_slice(json.as_bytes());
    }
    out
}

/// Decodes one frame payload. `None` means the payload is not a valid
/// record (treated like a checksum failure by the salvage scan).
fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut r = PayloadReader::new(payload);
    let client = r.u16().ok()?;
    let seq = r.u64().ok()?;
    let node = r.u16().ok()?;
    let op = match r.u8().ok()? {
        0 => MemOp::Read,
        1 => MemOp::Write,
        _ => return None,
    };
    let addr = r.u64().ok()?;
    let kind = step_kind_from_u8(r.u8().ok()?)?;
    let control = r.u64().ok()?;
    let data = r.u64().ok()?;
    let step = r.u64().ok()?;
    let n_events = r.u32().ok()? as usize;
    let mut events = Vec::with_capacity(n_events.min(1024));
    for _ in 0..n_events {
        let len = r.u32().ok()? as usize;
        let bytes = r.bytes(len).ok()?;
        let json = std::str::from_utf8(bytes).ok()?;
        events.push(Event::from_json(json).ok()?);
    }
    r.finish().ok()?;
    Some(WalRecord {
        entry: JournalEntry {
            client,
            seq,
            mref: MemRef::new(NodeId::new(node), op, Addr::new(addr)),
            kind,
            messages: MessageCount::new(control, data),
            step,
        },
        events,
    })
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u64(&mut frame, fnv1a_64(payload));
    frame.extend_from_slice(payload);
    frame
}

/// Scans `bytes` (which must start with the header) and returns the
/// valid records plus the byte offset where validity ends.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (records, 0);
    }
    let mut pos = WAL_MAGIC.len();
    while let Some(header) = bytes.get(pos..pos + 12) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            break;
        };
        if fnv1a_64(payload) != stored {
            break;
        }
        let Some(record) = decode_record(payload) else {
            break;
        };
        records.push(record);
        pos += 12 + len;
    }
    (records, pos)
}

// ---------------------------------------------------------------------
// WAL operations
// ---------------------------------------------------------------------

/// Reads and scans a WAL file without repairing it (the offline /
/// verification view). A missing file is an empty, `created` salvage.
///
/// # Errors
///
/// Storage failures other than the file not existing.
pub fn read_wal<S: Storage + ?Sized>(storage: &S, path: &Path) -> io::Result<SalvagedWal> {
    let bytes = match storage.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(SalvagedWal {
                created: true,
                ..SalvagedWal::default()
            })
        }
        Err(e) => return Err(e),
    };
    let (records, valid) = scan(&bytes);
    Ok(SalvagedWal {
        records,
        dropped_bytes: (bytes.len() - valid) as u64,
        created: false,
    })
}

/// Opens a shard's WAL for appending: creates it (header, fsynced,
/// dir-entry fsynced) if missing, or scans it and truncates any torn
/// tail back to the last valid record — atomically, via a sibling tmp
/// file, so a crash *during* salvage cannot lose valid records.
///
/// # Errors
///
/// Any storage failure (including injected ones).
pub fn open_wal<S: Storage + ?Sized>(storage: &S, path: &Path) -> io::Result<SalvagedWal> {
    let bytes = match storage.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            storage.write_file(path, &WAL_MAGIC)?;
            storage.sync(path)?;
            storage.sync_parent(path)?;
            return Ok(SalvagedWal {
                created: true,
                ..SalvagedWal::default()
            });
        }
        Err(e) => return Err(e),
    };
    let (records, valid) = scan(&bytes);
    let keep = valid.max(WAL_MAGIC.len());
    let dropped = bytes.len().saturating_sub(keep) as u64;
    if bytes.len() != keep || valid < WAL_MAGIC.len() {
        // Torn tail (or a header so mangled the whole file is invalid):
        // rewrite the valid prefix and swap it into place.
        let mut fixed = Vec::with_capacity(keep);
        if valid < WAL_MAGIC.len() {
            fixed.extend_from_slice(&WAL_MAGIC);
        } else {
            fixed.extend_from_slice(&bytes[..keep]);
        }
        let tmp = tmp_path(path);
        storage.write_file(&tmp, &fixed)?;
        storage.sync(&tmp)?;
        storage.rename(&tmp, path)?;
        storage.sync_parent(path)?;
    }
    Ok(SalvagedWal {
        records,
        dropped_bytes: dropped,
        created: false,
    })
}

/// Appends one record and fsyncs it. Only after this returns may the
/// entry be committed to the in-memory journal and acked.
///
/// # Errors
///
/// Any storage failure; on error the entry MUST NOT be acked (the next
/// incarnation's salvage will drop any torn bytes this append left).
pub fn append_record<S: Storage + ?Sized>(
    storage: &S,
    path: &Path,
    entry: &JournalEntry,
    events: &[Event],
) -> io::Result<()> {
    append_record_timed(storage, path, entry, events, None)
}

/// Stage-latency sinks for [`append_record_timed`]: the encode+write
/// half and the fsync half land in separate histograms, so a scraper
/// can tell a slow disk (fsync) from a large frame (append).
pub struct WalTiming<'a> {
    /// Receives the encode + append latency, microseconds.
    pub append_us: &'a AtomicHistogram,
    /// Receives the fsync latency, microseconds.
    pub fsync_us: &'a AtomicHistogram,
}

/// [`append_record`], with optional per-stage latency recording. The
/// clock reads surround the storage calls only — nothing on the
/// deterministic encode path depends on them.
pub fn append_record_timed<S: Storage + ?Sized>(
    storage: &S,
    path: &Path,
    entry: &JournalEntry,
    events: &[Event],
    timing: Option<&WalTiming<'_>>,
) -> io::Result<()> {
    let frame = encode_frame(&encode_record(entry, events));
    let t0 = timing.map(|_| Instant::now());
    storage.append(path, &frame)?;
    if let (Some(t), Some(t0)) = (timing, t0) {
        t.append_us.record(t0.elapsed().as_micros() as u64);
    }
    let t1 = timing.map(|_| Instant::now());
    storage.sync(path)?;
    if let (Some(t), Some(t1)) = (timing, t1) {
        t.fsync_us.record(t1.elapsed().as_micros() as u64);
    }
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------
// Per-shard snapshot files
// ---------------------------------------------------------------------

/// A usable per-shard snapshot recovered from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The engine snapshot.
    pub snapshot: EngineSnapshot,
    /// Journal entries the snapshot covers.
    pub covered: usize,
    /// Which generation it came from.
    pub generation: SnapshotGeneration,
}

/// Writes a shard snapshot durably, rotating the previous generation
/// to `.prev` exactly like [`Checkpoint::save`](mcc_core::Checkpoint::save).
///
/// # Errors
///
/// Any storage failure.
pub fn save_snapshot<S: Storage + ?Sized>(
    storage: &S,
    path: &Path,
    snapshot: &EngineSnapshot,
    covered: u64,
) -> io::Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, covered);
    snapshot.encode_into(&mut payload);
    let mut bytes = Vec::with_capacity(payload.len() + 24);
    write_envelope(&mut bytes, SHARD_SNAPSHOT_MAGIC, &payload)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let tmp = tmp_path(path);
    storage.write_file(&tmp, &bytes)?;
    storage.sync(&tmp)?;
    if storage.exists(path) {
        storage.rename(path, &prev_path(path))?;
    }
    storage.rename(&tmp, path)?;
    storage.sync_parent(path)
}

fn decode_snapshot(bytes: &[u8]) -> Option<(EngineSnapshot, usize)> {
    let payload = read_envelope(&mut ReadSlice(bytes), SHARD_SNAPSHOT_MAGIC).ok()?;
    let mut r = PayloadReader::new(&payload);
    let covered = r.u64().ok()? as usize;
    let snapshot = EngineSnapshot::decode(&mut r).ok()?;
    r.finish().ok()?;
    Some((snapshot, covered))
}

/// `&[u8]` reader without consuming the slice binding (read_envelope
/// wants `&mut R: Read`).
struct ReadSlice<'a>(&'a [u8]);

impl Read for ReadSlice<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

/// Loads the best usable snapshot for a shard: the current generation
/// if it decodes and covers at most `max_covered` entries (more would
/// mean the WAL lost durable bytes after the snapshot was cut —
/// reject it), else the rotated `.prev`, else `None` (rebuild by full
/// WAL replay).
///
/// # Errors
///
/// Only *environment* failures (e.g. a kill-point firing on the read);
/// corruption never errors, it falls back.
pub fn load_snapshot<S: Storage + ?Sized>(
    storage: &S,
    path: &Path,
    max_covered: usize,
) -> io::Result<Option<LoadedSnapshot>> {
    for (candidate, generation) in [
        (path.to_path_buf(), SnapshotGeneration::Current),
        (prev_path(path), SnapshotGeneration::Previous),
    ] {
        let bytes = match storage.read(&candidate) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        if let Some((snapshot, covered)) = decode_snapshot(&bytes) {
            if covered <= max_covered {
                return Ok(Some(LoadedSnapshot {
                    snapshot,
                    covered,
                    generation,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_core::{ChaosStorage, KillScope, RealStorage, StorageFaultPlan};

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            client: 3,
            seq,
            mref: MemRef::new(NodeId::new(3), MemOp::Write, Addr::new(seq * 16)),
            kind: StepKind::WriteMiss,
            messages: MessageCount::new(2, 1),
            step: seq,
        }
    }

    fn events(seq: u64) -> Vec<Event> {
        vec![Event::ShardStarted {
            shard: seq as u32,
            records: seq,
        }]
    }

    #[test]
    fn record_round_trips() {
        let e = entry(42);
        let evs = events(42);
        let payload = encode_record(&e, &evs);
        let rec = decode_record(&payload).expect("decodes");
        assert_eq!(rec.entry, e);
        assert_eq!(rec.events, evs);
    }

    #[test]
    fn wal_append_and_reopen() {
        let fs = ChaosStorage::new(StorageFaultPlan::reliable(1));
        let path = Path::new("shard-0.wal");
        assert!(open_wal(&fs, path).unwrap().created);
        for seq in 1..=5 {
            append_record(&fs, path, &entry(seq), &events(seq)).unwrap();
        }
        let salvage = open_wal(&fs, path).unwrap();
        assert_eq!(salvage.records.len(), 5);
        assert_eq!(salvage.dropped_bytes, 0);
        assert_eq!(salvage.records[4].entry, entry(5));
    }

    /// Every possible truncation of the file recovers exactly the
    /// fully-synced, fully-framed prefix of records.
    #[test]
    fn torn_tail_salvage_at_every_byte() {
        let fs = ChaosStorage::new(StorageFaultPlan::reliable(1));
        let path = Path::new("w.wal");
        open_wal(&fs, path).unwrap();
        let mut boundaries = vec![WAL_MAGIC.len()];
        for seq in 1..=4 {
            append_record(&fs, path, &entry(seq), &events(seq)).unwrap();
            boundaries.push(fs.read(path).unwrap().len());
        }
        let full = fs.read(path).unwrap();
        for cut in 0..=full.len() {
            let torn = ChaosStorage::new(StorageFaultPlan::reliable(2));
            torn.write_file(path, &full[..cut]).unwrap();
            let salvage = open_wal(&torn, path).unwrap();
            // The number of whole records that fit under the cut (a
            // cut inside the header itself salvages zero records).
            let want = boundaries
                .iter()
                .filter(|&&b| b <= cut)
                .count()
                .saturating_sub(1);
            assert_eq!(salvage.records.len(), want, "cut at {cut}");
            for (i, rec) in salvage.records.iter().enumerate() {
                assert_eq!(rec.entry, entry(i as u64 + 1));
            }
            // The salvaged file is clean: re-opening drops nothing and
            // appending continues from the valid prefix.
            let again = open_wal(&torn, path).unwrap();
            assert_eq!(again.dropped_bytes, 0);
            append_record(&torn, path, &entry(99), &events(99)).unwrap();
            let final_read = read_wal(&torn, path).unwrap();
            assert_eq!(final_read.records.len(), want + 1);
        }
    }

    /// Bit flips anywhere in the file never salvage a corrupt record:
    /// the scan stops at (or before) the flipped frame.
    #[test]
    fn bit_flip_cannot_forge_a_record() {
        let fs = ChaosStorage::new(StorageFaultPlan::reliable(1));
        let path = Path::new("w.wal");
        open_wal(&fs, path).unwrap();
        for seq in 1..=3 {
            append_record(&fs, path, &entry(seq), &[]).unwrap();
        }
        let full = fs.read(path).unwrap();
        for byte in WAL_MAGIC.len()..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x10;
            let (records, _) = scan(&flipped);
            for (i, rec) in records.iter().enumerate() {
                assert_eq!(rec.entry, entry(i as u64 + 1), "flip at byte {byte}");
            }
        }
    }

    #[test]
    fn snapshot_rotation_and_fallback() {
        use mcc_cache::CacheConfig;
        use mcc_core::{DirectoryEngine, DirectorySimConfig, PlacementPolicy, Protocol};
        use mcc_placement::PagePlacement;

        let config = DirectorySimConfig {
            nodes: 2,
            block_size: mcc_check::CHECK_BLOCK_SIZE,
            cache: CacheConfig::Infinite,
            placement: PlacementPolicy::RoundRobin,
            directory: mcc_core::DirectoryRepr::FullMap,
        };
        let mut engine =
            DirectoryEngine::new(Protocol::Basic, &config, PagePlacement::round_robin(2));
        engine
            .try_step(MemRef::new(NodeId::new(0), MemOp::Write, Addr::new(0)))
            .unwrap();
        let snap_a = EngineSnapshot::capture(&engine);
        engine
            .try_step(MemRef::new(NodeId::new(1), MemOp::Read, Addr::new(16)))
            .unwrap();
        let snap_b = EngineSnapshot::capture(&engine);

        let fs = ChaosStorage::new(StorageFaultPlan::reliable(1));
        let path = Path::new("d/shard-0.ckpt");
        save_snapshot(&fs, path, &snap_a, 1).unwrap();
        save_snapshot(&fs, path, &snap_b, 2).unwrap();

        // Current wins when usable.
        let loaded = load_snapshot(&fs, path, 10).unwrap().unwrap();
        assert_eq!(loaded.covered, 2);
        assert_eq!(loaded.generation, SnapshotGeneration::Current);

        // Corrupt the current generation: fallback to .prev.
        let mut bytes = fs.read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs.write_file(path, &bytes).unwrap();
        let loaded = load_snapshot(&fs, path, 10).unwrap().unwrap();
        assert_eq!(loaded.covered, 1);
        assert_eq!(loaded.generation, SnapshotGeneration::Previous);
        assert_eq!(loaded.snapshot, snap_a);

        // A snapshot ahead of the WAL is rejected the same way.
        let fs2 = ChaosStorage::new(StorageFaultPlan::reliable(1));
        save_snapshot(&fs2, path, &snap_a, 1).unwrap();
        save_snapshot(&fs2, path, &snap_b, 2).unwrap();
        let loaded = load_snapshot(&fs2, path, 1).unwrap().unwrap();
        assert_eq!(loaded.covered, 1);
        assert_eq!(loaded.generation, SnapshotGeneration::Previous);
        assert!(load_snapshot(&fs2, path, 0).unwrap().is_none());
    }

    /// A kill-point mid-append leaves a WAL the next open salvages.
    #[test]
    fn kill_during_append_salvages() {
        for kill_op in 0..20 {
            let fs = ChaosStorage::new(StorageFaultPlan::kill_at(
                kill_op,
                kill_op,
                KillScope::Machine,
            ));
            let path = Path::new("w.wal");
            let mut committed = 0u64;
            let r = (|| -> io::Result<()> {
                open_wal(&fs, path)?;
                for seq in 1..=4 {
                    append_record(&fs, path, &entry(seq), &events(seq))?;
                    committed = seq;
                }
                Ok(())
            })();
            if r.is_ok() {
                continue; // kill landed past this scenario's ops
            }
            let salvage = open_wal(&fs, path).unwrap();
            // Crucially: every record that was acked (append_record
            // returned Ok) survived.
            assert!(
                salvage.records.len() as u64 >= committed,
                "kill at {kill_op}: {} salvaged < {committed} acked",
                salvage.records.len()
            );
            for (i, rec) in salvage.records.iter().enumerate() {
                assert_eq!(rec.entry, entry(i as u64 + 1));
            }
        }
    }

    #[test]
    fn real_storage_wal_round_trip() {
        let dir = std::env::temp_dir().join(format!("mcc-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        let s = RealStorage;
        assert!(open_wal(&s, &path).unwrap().created);
        append_record(&s, &path, &entry(1), &events(1)).unwrap();
        let salvage = open_wal(&s, &path).unwrap();
        assert_eq!(salvage.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
