//! Differential replay verification of a live run.
//!
//! The live service's correctness argument is evidence-based: every
//! shard records the linearized stream of references it applied (its
//! journal), and this module replays those streams through
//! `mcc-check`'s lockstep checker — the engine *and* the §2 reference
//! specification stepping side by side, with the full invariant suite
//! between them. A live run is accepted only if
//!
//! 1. every journal replays with **zero checker violations** (so the
//!    live engines obeyed the paper's detection/demotion rules and
//!    Table-1 message accounting, including across crash-restarts);
//! 2. the replayed outcome of each entry (`kind`, `messages`) equals
//!    what the live shard charged and acknowledged at the time;
//! 3. each surviving shard's final [`SimResult`] equals the replay's —
//!    the WAL really is the whole story;
//! 4. the re-generated event narration equals the journal's committed
//!    event stream (framing events aside), proving restarts never
//!    dropped or duplicated an observation;
//! 5. the per-client sequence numbers in the journals form exactly the
//!    gap-free prefix `1..=k` that clients report acknowledged — the
//!    *no-lost-writes / exactly-once* oracle. Chaos may add latency
//!    and retries; it must never add or lose an acknowledged write.

use std::collections::HashMap;

use mcc_check::{Checker, CheckerConfig};
use mcc_core::Protocol;
use mcc_obs::Event;

use crate::client::ClientReport;
use crate::service::ShardOutcome;

/// The outcome of a verification pass.
#[derive(Clone, Debug, Default)]
pub struct VerifyOutcome {
    /// Shards whose journals were replayed.
    pub shards_checked: usize,
    /// Total journal entries replayed through the checker.
    pub steps_replayed: u64,
    /// Human-readable violations; empty means the run verified.
    pub violations: Vec<String>,
}

impl VerifyOutcome {
    /// Whether the run verified cleanly.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn violation(&mut self, msg: String) {
        // Cap the list so a systemic failure stays readable.
        if self.violations.len() < 64 {
            self.violations.push(msg);
        }
    }
}

/// Is this event part of a shard's *protocol* narration (as opposed to
/// checkpoint/incarnation framing)?
fn is_protocol_event(e: &Event) -> bool {
    !matches!(
        e,
        Event::CheckpointSaved { .. }
            | Event::CheckpointLoaded { .. }
            | Event::ShardStarted { .. }
            | Event::ShardFinished { .. }
    )
}

/// Replays every shard journal through the lockstep checker and runs
/// the exactly-once sequence oracle against the client reports.
pub fn verify_run(
    protocol: Protocol,
    nodes: u16,
    shards: &[ShardOutcome],
    clients: &[ClientReport],
) -> VerifyOutcome {
    let mut out = VerifyOutcome::default();

    for shard in shards {
        out.shards_checked += 1;
        let mut checker = Checker::new(&CheckerConfig::new(protocol, nodes));
        let mut dead = false;
        for (i, entry) in shard.journal.iter().enumerate() {
            match checker.check_step(entry.mref) {
                Ok(info) => {
                    out.steps_replayed += 1;
                    if info.kind != entry.kind || info.messages != entry.messages {
                        out.violation(format!(
                            "shard {} entry {i}: live charged {:?}/{:?}, replay says {:?}/{:?}",
                            shard.shard, entry.kind, entry.messages, info.kind, info.messages
                        ));
                    }
                }
                Err(v) => {
                    out.violation(format!(
                        "shard {} entry {i}: checker violation: {v}",
                        shard.shard
                    ));
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            continue;
        }
        match checker.finish() {
            Ok(reference) => {
                if let Ok(live) = &shard.result {
                    if *live != reference {
                        out.violation(format!(
                            "shard {}: live result differs from journal replay",
                            shard.shard
                        ));
                    }
                }
            }
            Err(v) => out.violation(format!("shard {}: checker finish: {v}", shard.shard)),
        }

        // The committed event narration must equal a fresh replay's.
        let committed: Vec<Event> = shard
            .events
            .iter()
            .copied()
            .filter(is_protocol_event)
            .collect();
        let replayed = replay_events(protocol, nodes, shard);
        if committed != replayed {
            out.violation(format!(
                "shard {}: committed event stream ({} events) differs from replay ({} events)",
                shard.shard,
                committed.len(),
                replayed.len()
            ));
        }
    }

    sequence_oracle(&mut out, shards, clients);
    out
}

/// Regenerates a shard's event narration by replaying its journal
/// through a fresh engine with a buffer sink.
fn replay_events(protocol: Protocol, nodes: u16, shard: &ShardOutcome) -> Vec<Event> {
    use mcc_cache::CacheConfig;
    use mcc_check::CHECK_BLOCK_SIZE;
    use mcc_core::{DirectoryEngine, DirectoryRepr, DirectorySimConfig, PlacementPolicy};
    use mcc_obs::{lock_sink, shared, BufferSink};
    use mcc_placement::PagePlacement;

    let config = DirectorySimConfig {
        nodes,
        block_size: CHECK_BLOCK_SIZE,
        cache: CacheConfig::Infinite,
        placement: PlacementPolicy::RoundRobin,
        directory: DirectoryRepr::FullMap,
    };
    let (buffer, sink) = shared(BufferSink::new());
    let mut engine =
        DirectoryEngine::new(protocol, &config, PagePlacement::round_robin(nodes)).with_sink(sink);
    for entry in &shard.journal {
        if engine.try_step(entry.mref).is_err() {
            break;
        }
    }
    engine.set_sink(None);
    let events = lock_sink(&buffer).events().to_vec();
    events
}

/// The exactly-once oracle: across all shards, each client's journal
/// entries must carry exactly the sequence numbers `1..=k`, each once,
/// with `k` at least the client's acknowledged count (an entry beyond
/// the acknowledged prefix is legal only when the reply was lost and
/// the client gave up — i.e. the client reported an error or the run
/// was degraded). Acknowledged write counts must match the journals
/// exactly when nothing failed.
fn sequence_oracle(out: &mut VerifyOutcome, shards: &[ShardOutcome], clients: &[ClientReport]) {
    let mut seqs: HashMap<u16, Vec<u64>> = HashMap::new();
    let mut journal_writes = 0u64;
    for shard in shards {
        for entry in &shard.journal {
            seqs.entry(entry.client).or_default().push(entry.seq);
            if entry.mref.op.is_write() {
                journal_writes += 1;
            }
        }
    }

    let clean =
        clients.iter().all(|c| c.error.is_none()) && shards.iter().all(|s| s.result.is_ok());

    for client in clients {
        let mut observed = seqs.remove(&client.node).unwrap_or_default();
        observed.sort_unstable();
        // Gap-free, duplicate-free prefix 1..=k.
        for (i, &s) in observed.iter().enumerate() {
            if s != i as u64 + 1 {
                out.violation(format!(
                    "client {}: journal sequence {} at position {} (want {}) — \
                     lost or duplicated apply",
                    client.node,
                    s,
                    i,
                    i + 1
                ));
                return;
            }
        }
        let k = observed.len() as u64;
        if k < client.ops {
            out.violation(format!(
                "client {}: acknowledged {} ops but journals hold only {} — lost writes",
                client.node, client.ops, k
            ));
        }
        // Beyond the acknowledged prefix only the single in-flight
        // reference at give-up time may appear, and only on failure.
        if client.error.is_none() && k != client.ops {
            out.violation(format!(
                "client {}: finished cleanly with {} acks but journals hold {}",
                client.node, client.ops, k
            ));
        }
        if k > client.ops + 1 {
            out.violation(format!(
                "client {}: journals hold {} entries, {} acknowledged — more than one \
                 unacknowledged apply is impossible under the blocking protocol",
                client.node, k, client.ops
            ));
        }
    }
    for (node, extra) in seqs {
        out.violation(format!(
            "journals contain entries for unknown client {node}: {} entries",
            extra.len()
        ));
    }

    if clean {
        let acked_writes: u64 = clients.iter().map(|c| c.acked_writes).sum();
        if acked_writes != journal_writes {
            out.violation(format!(
                "write-count oracle: clients acknowledge {acked_writes} writes, \
                 journals hold {journal_writes}"
            ));
        }
    }
}
