//! Shard threads: one directory-engine incarnation per shard, with a
//! journal that doubles as write-ahead log and verification evidence.
//!
//! Each shard owns a disjoint set of blocks (the same
//! [`shard_of_block`](mcc_trace::shard_of_block) partition the offline
//! sharded runner uses) and runs a private [`DirectoryEngine`] over the
//! checker's canonical geometry, so its journal replays directly
//! through `mcc-check`'s lockstep checker.
//!
//! # Incarnations, fencing, and the WAL
//!
//! The state that must survive a crash lives in [`ShardShared`], which
//! the supervisor owns; the engine itself is private to one
//! *incarnation* (one spawned thread) and is rebuilt on restart from
//! the last [`EngineSnapshot`] checkpoint plus a silent replay of the
//! journal suffix — the journal is the WAL, the snapshot just bounds
//! replay time.
//!
//! Supervisor restarts are fenced by an epoch counter: an incarnation
//! that was given up on (stalled, then resumed) observes the bumped
//! epoch and abandons itself before it can corrupt the journal. Engine
//! events are staged in a thread-local buffer during `try_step` and
//! committed to the journal *atomically with the journal entry*, under
//! the same lock and the same epoch check, so the event stream and the
//! entry stream can never disagree — a zombie's half-applied step
//! leaves no trace.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mcc_cache::CacheConfig;
use mcc_check::CHECK_BLOCK_SIZE;
use mcc_core::{
    DirectoryEngine, DirectoryRepr, DirectorySimConfig, EngineSnapshot, PlacementPolicy, Protocol,
    SimResult, SnapshotGeneration, Storage,
};
use mcc_obs::{shared, BufferSink, Event, EventSink, TelemetrySink, DEFAULT_PUBLISH_EVERY};
use mcc_placement::PagePlacement;
use mcc_prng::SplitMix64;

use crate::chaos::{ChannelStats, ChaosChannel};
use crate::telemetry::LiveTelemetry;
use crate::wal::{self, WalStats, WalTiming};
use crate::wire::{JournalEntry, Reply, Request};

/// The error string an incarnation reports when it finds itself fenced
/// out by a newer epoch. The supervisor ignores exits carrying a stale
/// epoch, so this is informational.
pub(crate) const SUPERSEDED: &str = "superseded by a newer incarnation";

/// Locks a mutex, tolerating poisoning: an incarnation that panicked
/// while holding a lock must not take the whole service down with it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A shard's durable state: everything that survives an incarnation.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    /// The linearized history of applied references, append-only
    /// across incarnations.
    pub entries: Vec<JournalEntry>,
    /// The engine's event narration, committed in lockstep with
    /// `entries` (framing events excepted).
    pub events: Vec<Event>,
    /// Last published checkpoint: the snapshot plus the number of
    /// journal entries it covers.
    pub checkpoint: Option<(EngineSnapshot, usize)>,
    /// Reply-side chaos stats, folded in when an incarnation exits.
    pub reply_chaos: ChannelStats,
    /// NACKs this shard's simulated controller issued.
    pub nacks_sent: u64,
    /// Durability counters (all zero unless a WAL is configured).
    pub wal: WalStats,
}

/// State shared between the supervisor and a shard's incarnations.
pub(crate) struct ShardShared {
    /// The shard's single inbox. Behind a mutex so a replacement
    /// incarnation can take over receiving; the lock is held only for
    /// one bounded `recv_timeout` at a time.
    pub inbox: Mutex<Receiver<Request>>,
    /// The WAL / evidence journal.
    pub journal: Mutex<Journal>,
    /// Liveness counter, bumped once per service-loop iteration; the
    /// supervisor restarts the shard when it stops moving.
    pub heartbeat: AtomicU64,
    /// Fencing epoch: the supervisor bumps this before spawning a
    /// replacement, stranding any zombie of an older incarnation.
    pub epoch: AtomicU64,
}

impl ShardShared {
    pub(crate) fn new(inbox: Receiver<Request>) -> ShardShared {
        ShardShared {
            inbox: Mutex::new(inbox),
            journal: Mutex::new(Journal::default()),
            heartbeat: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }
}

/// Immutable per-shard configuration, shared by all incarnations.
pub(crate) struct ShardCtx {
    pub shard: u32,
    pub protocol: Protocol,
    pub nodes: u16,
    /// Base seed for the chaos layer and the NACK draw.
    pub chaos_seed: u64,
    /// Fault rates for the shard→client reply direction.
    pub reply_rates: mcc_core::FaultRates,
    /// NACK probability drawn at receive time (requests only),
    /// mirroring `MessageClass::Request` in the offline injector.
    pub nack_ppm: u32,
    /// Publish an [`EngineSnapshot`] every this many applies.
    pub checkpoint_every: u64,
    /// Heartbeat / inbox poll cadence.
    pub heartbeat_interval: Duration,
    /// Crash drill: `Some((shard, n))` panics the *first* incarnation
    /// of `shard` immediately before its `n`-th apply.
    pub kill: Option<(u32, u64)>,
    /// On-disk durability: when set, every commit is WAL-appended and
    /// fsynced before it is acked, and engine snapshots are persisted
    /// with rotation.
    pub durable: Option<DurableCtx>,
    /// Live telemetry handles, when the plane is on.
    pub telemetry: Option<Arc<LiveTelemetry>>,
}

/// Where a shard persists its WAL and snapshot, and through which
/// [`Storage`] backend (the seam the torture harness points at a
/// [`ChaosStorage`](mcc_core::ChaosStorage)).
pub(crate) struct DurableCtx {
    pub storage: Arc<dyn Storage>,
    pub wal_path: PathBuf,
    pub snap_path: PathBuf,
}

impl ShardCtx {
    /// The engine geometry every shard runs: the checker's canonical
    /// configuration, so journals replay through `mcc-check` verbatim.
    pub(crate) fn engine_config(&self) -> DirectorySimConfig {
        DirectorySimConfig {
            nodes: self.nodes,
            block_size: CHECK_BLOCK_SIZE,
            cache: CacheConfig::Infinite,
            placement: PlacementPolicy::RoundRobin,
            directory: DirectoryRepr::FullMap,
        }
    }
}

/// Derives a channel/draw seed from the run's chaos seed and a role
/// tag, so every channel gets an independent deterministic stream.
pub(crate) fn derive_seed(base: u64, role: u64, a: u64, b: u64) -> u64 {
    SplitMix64::new(
        base ^ role.rotate_left(48) ^ a.rotate_left(24) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
    .next_u64()
}

/// Runs one incarnation of a shard until the inbox disconnects (all
/// clients done), the incarnation is fenced out, or the engine fails.
///
/// On success returns the engine's final [`SimResult`] — which, by the
/// WAL construction, is a pure function of the journal.
pub(crate) fn run_incarnation(
    ctx: &ShardCtx,
    shared_state: &ShardShared,
    reply_txs: &[std::sync::mpsc::Sender<Reply>],
    epoch: u64,
) -> Result<SimResult, String> {
    let config = ctx.engine_config();
    let placement = PagePlacement::round_robin(ctx.nodes);

    // --- Rebuild the engine from checkpoint + WAL suffix. ---
    // The catch-up replay runs without a sink: the events for those
    // entries were committed when they were first applied.
    let (mut engine, mut applied, mut last_reply) = {
        let mut journal = lock(&shared_state.journal);

        // Durable-WAL reconcile: salvage the on-disk log (truncating
        // any torn tail) and fold in entries the in-memory journal
        // never saw — a crash can land between the WAL fsync and the
        // in-memory commit, and the durable log is the truth.
        if let Some(d) = &ctx.durable {
            let salvage = wal::open_wal(d.storage.as_ref(), &d.wal_path)
                .map_err(|e| format!("shard {}: wal open: {e}", ctx.shard))?;
            if salvage.dropped_bytes > 0 {
                journal.wal.torn_tails += 1;
                journal.wal.dropped_bytes += salvage.dropped_bytes;
                if let Some(lt) = &ctx.telemetry {
                    lt.wal_torn_tails.fetch_add(1, Ordering::Relaxed);
                    lt.wal_dropped_bytes
                        .fetch_add(salvage.dropped_bytes, Ordering::Relaxed);
                }
            }
            let mem = journal.entries.len();
            if salvage.records.len() < mem {
                // Entries were acked that the durable log does not
                // hold: an fsync lied. There is no way to rewrite
                // history consistently — report the degrade.
                return Err(format!(
                    "shard {}: durable WAL holds {} records but {} were acked \
                     (lost fsync?)",
                    ctx.shard,
                    salvage.records.len(),
                    mem
                ));
            }
            for (i, rec) in salvage.records.iter().take(mem).enumerate() {
                if rec.entry != journal.entries[i] {
                    return Err(format!(
                        "shard {}: durable WAL diverges from memory at record {i}",
                        ctx.shard
                    ));
                }
            }
            for rec in &salvage.records[mem..] {
                journal.entries.push(rec.entry);
                journal.events.extend(rec.events.iter().cloned());
                journal.wal.reconciled += 1;
            }
            if let Some(lt) = &ctx.telemetry {
                let reconciled = (salvage.records.len() - mem) as u64;
                if reconciled > 0 {
                    lt.wal_reconciled.fetch_add(reconciled, Ordering::Relaxed);
                    // Reconciled entries were never counted at commit
                    // time (the crash landed between fsync and the
                    // in-memory commit), so fold them in here.
                    lt.applied.fetch_add(reconciled, Ordering::Relaxed);
                }
            }
            // Adopt the persisted snapshot when it bounds replay
            // better than the in-memory checkpoint (after a process
            // restart there is no in-memory checkpoint at all). A
            // snapshot claiming to cover more entries than the WAL
            // holds is rejected inside `load_snapshot`.
            let covered_mem = journal.checkpoint.as_ref().map_or(0, |(_, c)| *c);
            let max = journal.entries.len();
            match wal::load_snapshot(d.storage.as_ref(), &d.snap_path, max) {
                Ok(Some(loaded)) if loaded.covered > covered_mem => {
                    if loaded.generation == SnapshotGeneration::Previous {
                        journal.wal.prev_snapshot_loads += 1;
                        if let Some(lt) = &ctx.telemetry {
                            lt.wal_prev_snapshot_loads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    journal.checkpoint = Some((loaded.snapshot, loaded.covered));
                }
                Ok(_) => {}
                Err(e) => {
                    return Err(format!("shard {}: snapshot load: {e}", ctx.shard));
                }
            }
        }

        let (mut engine, covered) = match &journal.checkpoint {
            Some((snapshot, covered)) => {
                let engine = snapshot
                    .restore(ctx.protocol, &config, placement.clone(), None)
                    .map_err(|e| format!("shard {}: checkpoint restore: {e}", ctx.shard))?;
                (engine, *covered)
            }
            None => (
                DirectoryEngine::new(ctx.protocol, &config, placement.clone()),
                0,
            ),
        };
        for entry in &journal.entries[covered..] {
            // Keep beating during WAL replay so a long catch-up is not
            // mistaken for a stall.
            shared_state.heartbeat.fetch_add(1, Ordering::Relaxed);
            let info = engine
                .try_step(entry.mref)
                .map_err(|e| format!("shard {}: WAL replay: {e}", ctx.shard))?;
            if info.kind != entry.kind || info.messages != entry.messages {
                return Err(format!(
                    "shard {}: WAL replay diverged at step {}: {:?} vs journal {:?}",
                    ctx.shard, entry.step, info.kind, entry.kind
                ));
            }
        }
        // Dedup cache: the last applied sequence (and the reply it
        // earned) per client, rebuilt from the journal.
        let mut last_reply: Vec<Option<(u64, Reply)>> = vec![None; ctx.nodes as usize];
        for entry in &journal.entries {
            last_reply[entry.client as usize] = Some((
                entry.seq,
                Reply::Done {
                    seq: entry.seq,
                    kind: entry.kind,
                    messages: entry.messages,
                    step: entry.step,
                },
            ));
        }
        let applied = journal.entries.len() as u64;
        if let Some(lt) = &ctx.telemetry {
            let g = &lt.shards[ctx.shard as usize];
            g.applied.store(applied, Ordering::Relaxed);
            let covered = journal.checkpoint.as_ref().map_or(0, |(_, c)| *c);
            g.wal_backlog
                .store((journal.entries.len() - covered) as i64, Ordering::Relaxed);
        }
        (engine, applied, last_reply)
    };

    // Stage engine events locally; they are committed to the journal
    // together with the entry that produced them.
    let (staged, sink) = shared(BufferSink::new());
    engine.set_sink(Some(sink));
    let mut staged_cursor = 0usize;

    // Advisory engine-event aggregates: committed events also feed a
    // batched TelemetrySink so the plane carries `records`,
    // `messages.*`, etc. These lag by one publish batch; the `live.*`
    // counters are the exact ones.
    let mut event_sink = ctx
        .telemetry
        .as_ref()
        .map(|lt| TelemetrySink::new(&lt.plane, DEFAULT_PUBLISH_EVERY));

    // Reply channels: per-client chaos wrappers, re-seeded per epoch
    // so a restart does not replay the exact fault pattern.
    let mut replies: Vec<ChaosChannel<Reply>> = reply_txs
        .iter()
        .enumerate()
        .map(|(client, tx)| {
            let c = ChaosChannel::new(
                tx.clone(),
                ctx.reply_rates,
                derive_seed(
                    ctx.chaos_seed,
                    0xC0,
                    u64::from(ctx.shard) << 16 | client as u64,
                    epoch,
                ),
            );
            match &ctx.telemetry {
                Some(lt) => c.with_telemetry(lt.rep_chaos.clone(), None),
                None => c,
            }
        })
        .collect();
    let mut nack_rng = SplitMix64::new(derive_seed(
        ctx.chaos_seed,
        0xAC,
        u64::from(ctx.shard),
        epoch,
    ));
    let mut nacks_sent = 0u64;

    // Announce the incarnation in the event stream.
    {
        let mut journal = lock(&shared_state.journal);
        if shared_state.epoch.load(Ordering::SeqCst) != epoch {
            return Err(SUPERSEDED.to_string());
        }
        if journal.checkpoint.is_some() {
            let ev = Event::CheckpointLoaded {
                step: engine.steps(),
                records: applied,
            };
            if let Some(sink) = event_sink.as_mut() {
                sink.emit(&ev);
            }
            journal.events.push(ev);
        }
        let ev = Event::ShardStarted {
            shard: ctx.shard,
            records: applied,
        };
        if let Some(sink) = event_sink.as_mut() {
            sink.emit(&ev);
        }
        journal.events.push(ev);
    }

    let exit =
        |mut replies: Vec<ChaosChannel<Reply>>, shared_state: &ShardShared, nacks_sent: u64| {
            let mut stats = ChannelStats::default();
            for c in replies.iter_mut() {
                c.flush();
                stats.absorb(&c.stats);
            }
            let mut journal = lock(&shared_state.journal);
            journal.reply_chaos.absorb(&stats);
            journal.nacks_sent += nacks_sent;
        };

    loop {
        shared_state.heartbeat.fetch_add(1, Ordering::Relaxed);
        if shared_state.epoch.load(Ordering::SeqCst) != epoch {
            exit(replies, shared_state, nacks_sent);
            return Err(SUPERSEDED.to_string());
        }

        let msg = {
            let inbox = lock(&shared_state.inbox);
            inbox.recv_timeout(ctx.heartbeat_interval)
        };
        let req = match msg {
            Ok(req) => req,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if let Some(lt) = &ctx.telemetry {
            lt.shards[ctx.shard as usize]
                .queue_depth
                .fetch_sub(1, Ordering::Relaxed);
            lt.queue_wait
                .record(req.queued_at.elapsed().as_micros() as u64);
        }

        let client = req.client as usize;
        if client >= replies.len() {
            continue; // malformed; impossible from our own clients
        }

        // Exactly-once: answer retransmits from the dedup cache.
        if let Some((last_seq, cached)) = last_reply[client] {
            if req.seq < last_seq {
                continue; // stale straggler; the client has moved on
            }
            if req.seq == last_seq {
                replies[client].send(cached);
                continue;
            }
        }

        // Simulated directory-controller NACK (request class only).
        if nack_rng.chance_ppm(ctx.nack_ppm) {
            nacks_sent += 1;
            if let Some(lt) = &ctx.telemetry {
                lt.nacks_sent.fetch_add(1, Ordering::Relaxed);
            }
            replies[client].send(Reply::Nack { seq: req.seq });
            continue;
        }

        // Crash drill: die *before* the apply so the journal, the
        // event stream, and the engine agree at the crash point.
        if epoch == 0 {
            if let Some((kill_shard, kill_after)) = ctx.kill {
                if kill_shard == ctx.shard && applied == kill_after {
                    panic!(
                        "injected crash drill: shard {} at {} applies",
                        ctx.shard, applied
                    );
                }
            }
        }

        // Time the deterministic step from *outside* it: the engine
        // never reads the clock, so the traced and untraced paths run
        // the exact same simulation.
        let step_t0 = ctx.telemetry.as_ref().map(|_| Instant::now());
        let info = engine
            .try_step(req.mref)
            .map_err(|e| format!("shard {}: engine: {e}", ctx.shard))?;
        if let (Some(lt), Some(t0)) = (&ctx.telemetry, step_t0) {
            lt.engine_step.record(t0.elapsed().as_micros() as u64);
        }
        applied += 1;
        let entry = JournalEntry {
            client: req.client,
            seq: req.seq,
            mref: req.mref,
            kind: info.kind,
            messages: info.messages,
            step: engine.steps(),
        };
        let reply = Reply::Done {
            seq: req.seq,
            kind: info.kind,
            messages: info.messages,
            step: entry.step,
        };

        // Commit entry + staged events atomically, behind the fence.
        // With a WAL configured the frame is appended and fsynced
        // first, still under the lock and the fence — a zombie cannot
        // write to the durable log either, and nothing is acked before
        // it is durable.
        let commit_t0 = ctx.telemetry.as_ref().map(|_| Instant::now());
        {
            let mut journal = lock(&shared_state.journal);
            if shared_state.epoch.load(Ordering::SeqCst) != epoch {
                // A replacement took over while we were applying; our
                // engine state is now a private fork. Discard it.
                drop(journal);
                exit(replies, shared_state, nacks_sent);
                return Err(SUPERSEDED.to_string());
            }
            let fresh: Vec<Event> = {
                let buffer = mcc_obs::lock_sink(&staged);
                let fresh = buffer.events()[staged_cursor..].to_vec();
                staged_cursor = buffer.events().len();
                fresh
            };
            if let Some(d) = &ctx.durable {
                let timing = ctx.telemetry.as_ref().map(|lt| WalTiming {
                    append_us: &lt.wal_append,
                    fsync_us: &lt.wal_fsync,
                });
                wal::append_record_timed(
                    d.storage.as_ref(),
                    &d.wal_path,
                    &entry,
                    &fresh,
                    timing.as_ref(),
                )
                .map_err(|e| format!("shard {}: wal append: {e}", ctx.shard))?;
                if let Some(lt) = &ctx.telemetry {
                    lt.wal_appends.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(sink) = event_sink.as_mut() {
                for ev in &fresh {
                    sink.emit(ev);
                }
            }
            journal.entries.push(entry);
            journal.events.extend(fresh);
            if ctx.checkpoint_every > 0 && applied % ctx.checkpoint_every == 0 {
                let snapshot = EngineSnapshot::capture(&engine);
                let covered = journal.entries.len();
                if let Some(d) = &ctx.durable {
                    wal::save_snapshot(d.storage.as_ref(), &d.snap_path, &snapshot, covered as u64)
                        .map_err(|e| format!("shard {}: snapshot save: {e}", ctx.shard))?;
                }
                journal.checkpoint = Some((snapshot, covered));
                let ev = Event::CheckpointSaved {
                    step: engine.steps(),
                    records: applied,
                };
                if let Some(sink) = event_sink.as_mut() {
                    sink.emit(&ev);
                }
                journal.events.push(ev);
            }
            if let Some(lt) = &ctx.telemetry {
                lt.applied.fetch_add(1, Ordering::Relaxed);
                let g = &lt.shards[ctx.shard as usize];
                g.applied
                    .store(journal.entries.len() as u64, Ordering::Relaxed);
                let covered = journal.checkpoint.as_ref().map_or(0, |(_, c)| *c);
                g.wal_backlog
                    .store((journal.entries.len() - covered) as i64, Ordering::Relaxed);
            }
        }
        if let (Some(lt), Some(t0)) = (&ctx.telemetry, commit_t0) {
            lt.commit.record(t0.elapsed().as_micros() as u64);
        }

        last_reply[client] = Some((req.seq, reply));
        let send_t0 = ctx.telemetry.as_ref().map(|_| Instant::now());
        replies[client].send(reply);
        if let (Some(lt), Some(t0)) = (&ctx.telemetry, send_t0) {
            lt.reply_send.record(t0.elapsed().as_micros() as u64);
        }
    }

    // Inbox disconnected: all clients are gone. Seal the journal.
    {
        let mut journal = lock(&shared_state.journal);
        if shared_state.epoch.load(Ordering::SeqCst) != epoch {
            drop(journal);
            exit(replies, shared_state, nacks_sent);
            return Err(SUPERSEDED.to_string());
        }
        let ev = Event::ShardFinished {
            shard: ctx.shard,
            records: applied,
        };
        if let Some(sink) = event_sink.as_mut() {
            sink.emit(&ev);
        }
        journal.events.push(ev);
    }
    exit(replies, shared_state, nacks_sent);
    engine.set_sink(None);
    Ok(engine.finish())
}
