//! The live service's wire vocabulary.
//!
//! A client asks its block's home shard to apply one memory reference;
//! the shard answers with the protocol outcome the directory engine
//! charged, or with a NACK when the (simulated) directory controller
//! refuses the request under contention. Both message types are small
//! `Copy` records so the chaos layer can duplicate them freely.
//!
//! Requests carry a per-client sequence number that provides
//! *exactly-once application* over an at-least-once wire: a client
//! retries a sequence number until it sees the matching reply, and the
//! shard deduplicates by remembering, per client, the last sequence it
//! applied together with the reply it sent. A retransmission of an
//! already-applied sequence is answered from that cache without
//! touching the engine, so drops, duplicates, and delayed stragglers
//! on either direction of the wire can never double-apply a reference.

use std::time::Instant;

use mcc_core::{MessageCount, StepKind};
use mcc_obs::SpanId;
use mcc_trace::MemRef;

/// A client's request that one memory reference be applied by the
/// shard that owns the referenced block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// The issuing client (also the node id of the reference).
    pub client: u16,
    /// Per-client sequence number, starting at 1 and gap-free: clients
    /// block on each reference, so a shard never sees sequence `n + 1`
    /// from a client before it has seen (and applied) `n`.
    pub seq: u64,
    /// The memory reference to apply.
    pub mref: MemRef,
    /// Zero-based delivery attempt, for observability only.
    pub attempt: u32,
    /// Causal span id, minted once per logical operation (stable
    /// across retransmits of the same `seq`). Observability only: no
    /// dedup or routing decision reads it.
    pub span: SpanId,
    /// When this attempt entered the wire; the shard's dequeue reads
    /// it to attribute queue-wait latency to the span. Re-stamped per
    /// attempt so a retransmit measures its own wait, not the first
    /// attempt's.
    pub queued_at: Instant,
}

/// A shard's reply to a [`Request`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The reference was applied (or had already been applied — the
    /// reply is replayed verbatim from the dedup cache on retransmits).
    Done {
        /// Echo of the request's sequence number.
        seq: u64,
        /// How the engine resolved the reference.
        kind: StepKind,
        /// Table-1 messages charged to the reference.
        messages: MessageCount,
        /// The shard engine's reference counter after the apply
        /// (1-based), fixing this entry's place in the shard's
        /// linearized history.
        step: u64,
    },
    /// The directory controller refused the request; the client must
    /// back off and retry the same sequence number.
    Nack {
        /// Echo of the request's sequence number.
        seq: u64,
    },
}

impl Reply {
    /// The sequence number this reply answers.
    pub fn seq(&self) -> u64 {
        match *self {
            Reply::Done { seq, .. } | Reply::Nack { seq } => seq,
        }
    }
}

/// One applied reference in a shard's journal: the linearized history
/// of everything the shard's engine executed, in execution order.
///
/// The journal is the service's source of truth. It doubles as a
/// write-ahead log (a restarted shard incarnation replays the suffix
/// past its last checkpoint to rebuild engine state) and as the
/// evidence for differential verification (the entries replay through
/// `mcc-check`'s lockstep engine/specification checker, which must
/// reproduce `kind` and `messages` exactly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// The client whose reference this was.
    pub client: u16,
    /// The client's sequence number for the reference.
    pub seq: u64,
    /// The reference itself.
    pub mref: MemRef,
    /// The outcome the engine charged.
    pub kind: StepKind,
    /// The Table-1 messages the engine charged.
    pub messages: MessageCount,
    /// The engine's reference counter after the apply (1-based).
    pub step: u64,
}
