//! Live-run telemetry: the handle bundle the service's hot paths
//! record through, and the knobs that turn the plane on.
//!
//! When [`LiveConfig::telemetry`](crate::LiveConfig::telemetry) is
//! set, `run_live` builds one [`LiveTelemetry`] — a pre-resolved set
//! of atomic counters, gauges, and stage histograms on a shared
//! [`Telemetry`] plane — and threads it into every client, shard, and
//! chaos channel. Recording is lock-free relaxed atomics; the HTTP
//! endpoint, the periodic snapshot writer, and the final
//! [`LiveReport::telemetry`](crate::LiveReport::telemetry) registry
//! all read the same plane.
//!
//! Metric names, all visible in the Prometheus exposition with an
//! `mcc_` prefix:
//!
//! * `live.*` — exact client/shard aggregates (`ops_acked`,
//!   `acked_writes`, `retries`, `nacks`, `timeouts`, `backoff_units`,
//!   `applied`, `nacks_sent`);
//! * `live.chaos.req.*` / `live.chaos.rep.*` — incremental
//!   [`ChannelStats`](crate::ChannelStats), updated per send instead
//!   of only at teardown;
//! * `live.wal.*` — incremental [`WalStats`](crate::WalStats) plus an
//!   `appends` counter;
//! * `shard.<i>.applied` / `shard.<i>.restarts` (counters) and
//!   `shard.<i>.queue_depth` / `shard.<i>.wal_backlog` /
//!   `shard.<i>.lag` (gauges) — per-shard health;
//! * `stage.<stage>_us` — per-stage latency histograms on the
//!   [`Stage`] taxonomy;
//! * the engine-event aggregates (`records`, `messages.*`,
//!   `classification.*`, …) fed by a batched
//!   [`TelemetrySink`](mcc_obs::TelemetrySink) on each shard's
//!   committed event stream. These lag by at most one publish batch
//!   and can undercount across a crash; the `live.*` counters are the
//!   exact ones.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use mcc_obs::{AtomicHistogram, Stage, Telemetry};

use crate::chaos::SharedChannelStats;

/// Turns the telemetry plane on for a live run.
#[derive(Clone, Default)]
pub struct TelemetrySpec {
    /// Bind address for the embedded HTTP endpoint (e.g.
    /// `"127.0.0.1:9185"`; port 0 picks a free port). `None` serves
    /// nothing.
    pub addr: Option<String>,
    /// Append a JSON snapshot line to this file every
    /// [`TelemetrySpec::snapshot_every`] (plus a final line at
    /// shutdown). Conventionally `<base>.telemetry.jsonl`.
    pub snapshot_path: Option<PathBuf>,
    /// Snapshot cadence (0 is clamped to 10ms by the writer).
    pub snapshot_every: Duration,
    /// When set, the resolved endpoint address is sent here once the
    /// listener is bound — the race-free way to scrape a port-0 run.
    pub notify_addr: Option<Sender<SocketAddr>>,
}

impl TelemetrySpec {
    /// A spec serving HTTP on `addr`, with the default 250ms snapshot
    /// cadence and no snapshot file.
    pub fn on(addr: impl Into<String>) -> TelemetrySpec {
        TelemetrySpec {
            addr: Some(addr.into()),
            snapshot_path: None,
            snapshot_every: Duration::from_millis(250),
            notify_addr: None,
        }
    }

    /// Adds a periodic snapshot file.
    pub fn with_snapshots(mut self, path: impl Into<PathBuf>, every: Duration) -> TelemetrySpec {
        self.snapshot_path = Some(path.into());
        self.snapshot_every = every;
        self
    }
}

impl std::fmt::Debug for TelemetrySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySpec")
            .field("addr", &self.addr)
            .field("snapshot_path", &self.snapshot_path)
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

/// Per-shard health handles.
pub(crate) struct ShardGauges {
    /// Counter `shard.<i>.applied`: journal length.
    pub applied: Arc<AtomicU64>,
    /// Counter `shard.<i>.restarts`, stored by the supervisor.
    pub restarts: Arc<AtomicU64>,
    /// Gauge `shard.<i>.queue_depth`: requests delivered to the inbox
    /// and not yet dequeued.
    pub queue_depth: Arc<AtomicI64>,
    /// Gauge `shard.<i>.wal_backlog`: journal entries past the last
    /// checkpoint — the replay length if the shard crashed right now.
    pub wal_backlog: Arc<AtomicI64>,
    /// Gauge `shard.<i>.lag`: how many applies this shard trails the
    /// most-advanced shard by (supervisor-computed).
    pub lag: Arc<AtomicI64>,
}

/// The pre-resolved handle bundle threaded through a live run.
pub(crate) struct LiveTelemetry {
    /// The shared plane (the HTTP endpoint and snapshot writer read
    /// this).
    pub plane: Arc<Telemetry>,
    // Stage latency histograms (microseconds).
    pub queue_wait: Arc<AtomicHistogram>,
    pub engine_step: Arc<AtomicHistogram>,
    pub commit: Arc<AtomicHistogram>,
    pub reply_send: Arc<AtomicHistogram>,
    pub backoff: Arc<AtomicHistogram>,
    pub total: Arc<AtomicHistogram>,
    pub wal_append: Arc<AtomicHistogram>,
    pub wal_fsync: Arc<AtomicHistogram>,
    // Exact client-side aggregates.
    pub ops_acked: Arc<AtomicU64>,
    pub acked_writes: Arc<AtomicU64>,
    pub retries: Arc<AtomicU64>,
    pub nacks: Arc<AtomicU64>,
    pub timeouts: Arc<AtomicU64>,
    pub backoff_units: Arc<AtomicU64>,
    // Exact shard-side aggregates.
    pub applied: Arc<AtomicU64>,
    pub nacks_sent: Arc<AtomicU64>,
    // Incremental chaos stats, per wire direction.
    pub req_chaos: SharedChannelStats,
    pub rep_chaos: SharedChannelStats,
    // Incremental durable-WAL stats.
    pub wal_appends: Arc<AtomicU64>,
    pub wal_torn_tails: Arc<AtomicU64>,
    pub wal_dropped_bytes: Arc<AtomicU64>,
    pub wal_reconciled: Arc<AtomicU64>,
    pub wal_prev_snapshot_loads: Arc<AtomicU64>,
    // Per-shard health.
    pub shards: Vec<ShardGauges>,
}

impl LiveTelemetry {
    /// Registers every metric a run with `shards` shards records.
    pub fn new(shards: usize) -> LiveTelemetry {
        let plane = Arc::new(Telemetry::new());
        let shard_gauges = (0..shards)
            .map(|i| ShardGauges {
                applied: plane.counter(&format!("shard.{i}.applied")),
                restarts: plane.counter(&format!("shard.{i}.restarts")),
                queue_depth: plane.gauge(&format!("shard.{i}.queue_depth")),
                wal_backlog: plane.gauge(&format!("shard.{i}.wal_backlog")),
                lag: plane.gauge(&format!("shard.{i}.lag")),
            })
            .collect();
        LiveTelemetry {
            queue_wait: plane.stage(Stage::QueueWait),
            engine_step: plane.stage(Stage::EngineStep),
            commit: plane.stage(Stage::Commit),
            reply_send: plane.stage(Stage::ReplySend),
            backoff: plane.stage(Stage::Backoff),
            total: plane.stage(Stage::Total),
            wal_append: plane.stage(Stage::WalAppend),
            wal_fsync: plane.stage(Stage::WalFsync),
            ops_acked: plane.counter("live.ops_acked"),
            acked_writes: plane.counter("live.acked_writes"),
            retries: plane.counter("live.retries"),
            nacks: plane.counter("live.nacks"),
            timeouts: plane.counter("live.timeouts"),
            backoff_units: plane.counter("live.backoff_units"),
            applied: plane.counter("live.applied"),
            nacks_sent: plane.counter("live.nacks_sent"),
            req_chaos: SharedChannelStats::registered(&plane, "live.chaos.req"),
            rep_chaos: SharedChannelStats::registered(&plane, "live.chaos.rep"),
            wal_appends: plane.counter("live.wal.appends"),
            wal_torn_tails: plane.counter("live.wal.torn_tails"),
            wal_dropped_bytes: plane.counter("live.wal.dropped_bytes"),
            wal_reconciled: plane.counter("live.wal.reconciled"),
            wal_prev_snapshot_loads: plane.counter("live.wal.prev_snapshot_loads"),
            shards: shard_gauges,
            plane,
        }
    }

    /// Supervisor tick: recompute each shard's applied-record lag
    /// behind the most-advanced shard, and mirror restart counts.
    pub fn update_shard_health(&self, restarts: impl Iterator<Item = u32>) {
        let applied: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.applied.load(Ordering::Relaxed))
            .collect();
        let max = applied.iter().copied().max().unwrap_or(0);
        for (gauges, done) in self.shards.iter().zip(applied) {
            gauges.lag.store((max - done) as i64, Ordering::Relaxed);
        }
        for (gauges, restarts) in self.shards.iter().zip(restarts) {
            gauges
                .restarts
                .store(u64::from(restarts), Ordering::Relaxed);
        }
    }
}
