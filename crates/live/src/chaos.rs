//! Chaos-hardened channels: fault injection on real `mpsc` wires.
//!
//! A [`ChaosChannel`] wraps an [`std::sync::mpsc::Sender`] and applies
//! the same per-message fault vocabulary as `mcc-core`'s
//! [`FaultRates`](mcc_core::FaultRates) — drop, delay, duplicate — to
//! every message pushed through it. (NACKs are not a wire fault: the
//! shard's simulated directory controller draws them at receive time,
//! mirroring `MessageClass::Request` semantics in the trace-driven
//! injector.)
//!
//! *Delay* is modelled with a holdback queue: a delayed message is
//! parked and released after the next few sends on the same channel,
//! which also makes delayed messages arrive **out of order** relative
//! to later traffic — exactly the reordering hazard the sequence-number
//! dedup in [`wire`](crate::wire) exists to absorb.
//!
//! Each channel owns a private [`SplitMix64`] stream, so a run's fault
//! pattern is a pure function of the configured chaos seed and the
//! channel's identity, independent of thread scheduling.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;

use mcc_core::FaultRates;
use mcc_prng::SplitMix64;

/// How many subsequent sends a delayed message is held back for, at
/// most. Small on purpose: the point is reordering, not starvation —
/// a parked message is guaranteed out after this many sends or one
/// [`ChaosChannel::flush`].
const MAX_HOLDBACK: u64 = 3;

/// Counters for what a chaos channel did to its traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages offered to the channel.
    pub sent: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages parked in the holdback queue (each is eventually
    /// delivered or counted in `dropped_in_holdback` at teardown).
    pub delayed: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

impl ChannelStats {
    /// Sums two stat blocks (used to aggregate across channels).
    pub fn absorb(&mut self, other: &ChannelStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
    }

    /// Whether any fault was injected at all.
    pub fn faulted(&self) -> bool {
        self.dropped > 0 || self.delayed > 0 || self.duplicated > 0
    }
}

/// A fault-injecting wrapper around an `mpsc` sender.
pub struct ChaosChannel<T: Clone> {
    tx: Sender<T>,
    rates: FaultRates,
    rng: SplitMix64,
    /// Parked (message, remaining sends before release) pairs.
    holdback: VecDeque<(T, u64)>,
    /// What this channel has done so far.
    pub stats: ChannelStats,
}

impl<T: Clone> ChaosChannel<T> {
    /// Wraps `tx`, drawing faults at `rates` from a stream seeded with
    /// `seed`. With [`FaultRates::RELIABLE`] the channel is a plain
    /// pass-through and the RNG is never advanced.
    pub fn new(tx: Sender<T>, rates: FaultRates, seed: u64) -> ChaosChannel<T> {
        ChaosChannel {
            tx,
            rates,
            rng: SplitMix64::new(seed),
            holdback: VecDeque::new(),
            stats: ChannelStats::default(),
        }
    }

    /// Sends a message through the chaos layer.
    ///
    /// Returns `false` only when the receiving side has hung up;
    /// injected faults (a dropped or parked message) still return
    /// `true`, because from the sender's point of view the message
    /// left — finding out otherwise is the retry loop's job.
    pub fn send(&mut self, msg: T) -> bool {
        self.pump();
        self.stats.sent += 1;
        if self.rates == FaultRates::RELIABLE {
            return self.tx.send(msg).is_ok();
        }
        if self.rng.chance_ppm(self.rates.drop_ppm) {
            self.stats.dropped += 1;
            return true;
        }
        if self.rng.chance_ppm(self.rates.delay_ppm) {
            let hold = 1 + self.rng.gen_range(0..MAX_HOLDBACK);
            self.holdback.push_back((msg, hold));
            self.stats.delayed += 1;
            return true;
        }
        if self.rng.chance_ppm(self.rates.duplicate_ppm) {
            self.stats.duplicated += 1;
            let copy = msg.clone();
            let ok = self.tx.send(msg).is_ok();
            let _ = self.tx.send(copy);
            ok
        } else {
            self.tx.send(msg).is_ok()
        }
    }

    /// Ages the holdback queue by one send and releases due messages.
    fn pump(&mut self) {
        if self.holdback.is_empty() {
            return;
        }
        for entry in self.holdback.iter_mut() {
            entry.1 = entry.1.saturating_sub(1);
        }
        while let Some((_, 0)) = self.holdback.front() {
            let (msg, _) = self.holdback.pop_front().expect("front checked");
            let _ = self.tx.send(msg);
        }
    }

    /// Releases everything still parked, in order. Call before
    /// dropping the channel so a delayed message cannot be lost to
    /// teardown (delay must stay a *delay*, never a silent drop).
    pub fn flush(&mut self) {
        while let Some((msg, _)) = self.holdback.pop_front() {
            let _ = self.tx.send(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn reliable_channel_is_a_pass_through() {
        let (tx, rx) = mpsc::channel();
        let mut c = ChaosChannel::new(tx, FaultRates::RELIABLE, 7);
        for i in 0..100u32 {
            assert!(c.send(i));
        }
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(c.stats.sent, 100);
        assert!(!c.stats.faulted());
    }

    #[test]
    fn drops_lose_messages_and_are_counted() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            drop_ppm: 500_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 42);
        for i in 0..1000u32 {
            c.send(i);
        }
        c.flush();
        let got = rx.try_iter().count() as u64;
        assert_eq!(got + c.stats.dropped, 1000);
        assert!(c.stats.dropped > 300, "expected ~50% drops");
    }

    #[test]
    fn delays_reorder_but_never_lose() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            delay_ppm: 400_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 3);
        for i in 0..500u32 {
            c.send(i);
        }
        c.flush();
        let mut got: Vec<u32> = rx.try_iter().collect();
        assert!(c.stats.delayed > 100, "expected ~40% delays");
        // Delivery was shuffled by the holdback queue but complete.
        let reordered = got.windows(2).any(|w| w[0] > w[1]);
        assert!(reordered, "delays should reorder the stream");
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_add_extra_copies() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            duplicate_ppm: 300_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 11);
        for i in 0..500u32 {
            c.send(i);
        }
        let got = rx.try_iter().count() as u64;
        assert_eq!(got, 500 + c.stats.duplicated);
        assert!(c.stats.duplicated > 50, "expected ~30% duplicates");
    }

    #[test]
    fn fault_pattern_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let (tx, _rx) = mpsc::channel();
            let mut c = ChaosChannel::new(tx, FaultRates::uniform(250_000), seed);
            for i in 0..300u32 {
                c.send(i);
            }
            c.stats
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
