//! Chaos-hardened channels: fault injection on real `mpsc` wires.
//!
//! A [`ChaosChannel`] wraps an [`std::sync::mpsc::Sender`] and applies
//! the same per-message fault vocabulary as `mcc-core`'s
//! [`FaultRates`](mcc_core::FaultRates) — drop, delay, duplicate — to
//! every message pushed through it. (NACKs are not a wire fault: the
//! shard's simulated directory controller draws them at receive time,
//! mirroring `MessageClass::Request` semantics in the trace-driven
//! injector.)
//!
//! *Delay* is modelled with a holdback queue: a delayed message is
//! parked and released after the next few sends on the same channel,
//! which also makes delayed messages arrive **out of order** relative
//! to later traffic — exactly the reordering hazard the sequence-number
//! dedup in [`wire`](crate::wire) exists to absorb.
//!
//! Each channel owns a private [`SplitMix64`] stream, so a run's fault
//! pattern is a pure function of the configured chaos seed and the
//! channel's identity, independent of thread scheduling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use mcc_core::FaultRates;
use mcc_obs::Telemetry;
use mcc_prng::SplitMix64;

/// How many subsequent sends a delayed message is held back for, at
/// most. Small on purpose: the point is reordering, not starvation —
/// a parked message is guaranteed out after this many sends or one
/// [`ChaosChannel::flush`].
const MAX_HOLDBACK: u64 = 3;

/// Counters for what a chaos channel did to its traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages offered to the channel.
    pub sent: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages parked in the holdback queue (each is eventually
    /// delivered or counted in `dropped_in_holdback` at teardown).
    pub delayed: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

impl ChannelStats {
    /// Sums two stat blocks (used to aggregate across channels).
    pub fn absorb(&mut self, other: &ChannelStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
    }

    /// Whether any fault was injected at all.
    pub fn faulted(&self) -> bool {
        self.dropped > 0 || self.delayed > 0 || self.duplicated > 0
    }
}

/// Live twins of [`ChannelStats`]: atomic counters many channels bump
/// *as they act*, so the telemetry plane can snapshot wire behavior
/// mid-run instead of waiting for channel teardown.
///
/// Cloning shares the underlying counters; a run typically keeps one
/// bundle per wire direction and hands a clone to every channel on it.
#[derive(Clone, Debug)]
pub struct SharedChannelStats {
    /// Messages offered.
    pub sent: Arc<AtomicU64>,
    /// Messages silently dropped.
    pub dropped: Arc<AtomicU64>,
    /// Messages parked in a holdback queue.
    pub delayed: Arc<AtomicU64>,
    /// Extra copies injected.
    pub duplicated: Arc<AtomicU64>,
}

impl Default for SharedChannelStats {
    fn default() -> Self {
        SharedChannelStats::new()
    }
}

impl SharedChannelStats {
    /// Fresh, unregistered counters.
    pub fn new() -> SharedChannelStats {
        SharedChannelStats {
            sent: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
            delayed: Arc::new(AtomicU64::new(0)),
            duplicated: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Counters registered on a [`Telemetry`] plane as
    /// `<prefix>.sent` / `.dropped` / `.delayed` / `.duplicated`.
    pub fn registered(plane: &Telemetry, prefix: &str) -> SharedChannelStats {
        SharedChannelStats {
            sent: plane.counter(&format!("{prefix}.sent")),
            dropped: plane.counter(&format!("{prefix}.dropped")),
            delayed: plane.counter(&format!("{prefix}.delayed")),
            duplicated: plane.counter(&format!("{prefix}.duplicated")),
        }
    }

    /// A point-in-time [`ChannelStats`] view.
    pub fn snapshot(&self) -> ChannelStats {
        ChannelStats {
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
        }
    }
}

/// A fault-injecting wrapper around an `mpsc` sender.
pub struct ChaosChannel<T: Clone> {
    tx: Sender<T>,
    rates: FaultRates,
    rng: SplitMix64,
    /// Parked (message, remaining sends before release) pairs.
    holdback: VecDeque<(T, u64)>,
    /// What this channel has done so far.
    pub stats: ChannelStats,
    /// Optional live stats, bumped alongside `stats`.
    shared: Option<SharedChannelStats>,
    /// Optional receiver-queue depth gauge, incremented on every
    /// message actually handed to `tx` (the matching decrement is the
    /// receiver's job).
    depth: Option<Arc<AtomicI64>>,
}

impl<T: Clone> ChaosChannel<T> {
    /// Wraps `tx`, drawing faults at `rates` from a stream seeded with
    /// `seed`. With [`FaultRates::RELIABLE`] the channel is a plain
    /// pass-through and the RNG is never advanced.
    pub fn new(tx: Sender<T>, rates: FaultRates, seed: u64) -> ChaosChannel<T> {
        ChaosChannel {
            tx,
            rates,
            rng: SplitMix64::new(seed),
            holdback: VecDeque::new(),
            stats: ChannelStats::default(),
            shared: None,
            depth: None,
        }
    }

    /// Attaches live telemetry: shared stats bumped per action, and
    /// (optionally) a queue-depth gauge for the receiving side. The
    /// fault pattern is unaffected — the RNG draw order is identical
    /// with or without telemetry.
    pub fn with_telemetry(
        mut self,
        shared: SharedChannelStats,
        depth: Option<Arc<AtomicI64>>,
    ) -> ChaosChannel<T> {
        self.shared = Some(shared);
        self.depth = depth;
        self
    }

    /// Hands a message to the real sender, maintaining the depth gauge.
    fn deliver(&mut self, msg: T) -> bool {
        let ok = self.tx.send(msg).is_ok();
        if ok {
            if let Some(depth) = &self.depth {
                depth.fetch_add(1, Ordering::Relaxed);
            }
        }
        ok
    }

    fn bump(&self, field: impl Fn(&SharedChannelStats) -> &Arc<AtomicU64>) {
        if let Some(shared) = &self.shared {
            field(shared).fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sends a message through the chaos layer.
    ///
    /// Returns `false` only when the receiving side has hung up;
    /// injected faults (a dropped or parked message) still return
    /// `true`, because from the sender's point of view the message
    /// left — finding out otherwise is the retry loop's job.
    pub fn send(&mut self, msg: T) -> bool {
        self.pump();
        self.stats.sent += 1;
        self.bump(|s| &s.sent);
        if self.rates == FaultRates::RELIABLE {
            return self.deliver(msg);
        }
        if self.rng.chance_ppm(self.rates.drop_ppm) {
            self.stats.dropped += 1;
            self.bump(|s| &s.dropped);
            return true;
        }
        if self.rng.chance_ppm(self.rates.delay_ppm) {
            let hold = 1 + self.rng.gen_range(0..MAX_HOLDBACK);
            self.holdback.push_back((msg, hold));
            self.stats.delayed += 1;
            self.bump(|s| &s.delayed);
            return true;
        }
        if self.rng.chance_ppm(self.rates.duplicate_ppm) {
            self.stats.duplicated += 1;
            self.bump(|s| &s.duplicated);
            let copy = msg.clone();
            let ok = self.deliver(msg);
            let _ = self.deliver(copy);
            ok
        } else {
            self.deliver(msg)
        }
    }

    /// Ages the holdback queue by one send and releases due messages.
    fn pump(&mut self) {
        if self.holdback.is_empty() {
            return;
        }
        for entry in self.holdback.iter_mut() {
            entry.1 = entry.1.saturating_sub(1);
        }
        while let Some((_, 0)) = self.holdback.front() {
            let (msg, _) = self.holdback.pop_front().expect("front checked");
            let _ = self.deliver(msg);
        }
    }

    /// Releases everything still parked, in order. Call before
    /// dropping the channel so a delayed message cannot be lost to
    /// teardown (delay must stay a *delay*, never a silent drop).
    pub fn flush(&mut self) {
        while let Some((msg, _)) = self.holdback.pop_front() {
            let _ = self.deliver(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn reliable_channel_is_a_pass_through() {
        let (tx, rx) = mpsc::channel();
        let mut c = ChaosChannel::new(tx, FaultRates::RELIABLE, 7);
        for i in 0..100u32 {
            assert!(c.send(i));
        }
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(c.stats.sent, 100);
        assert!(!c.stats.faulted());
    }

    #[test]
    fn drops_lose_messages_and_are_counted() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            drop_ppm: 500_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 42);
        for i in 0..1000u32 {
            c.send(i);
        }
        c.flush();
        let got = rx.try_iter().count() as u64;
        assert_eq!(got + c.stats.dropped, 1000);
        assert!(c.stats.dropped > 300, "expected ~50% drops");
    }

    #[test]
    fn delays_reorder_but_never_lose() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            delay_ppm: 400_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 3);
        for i in 0..500u32 {
            c.send(i);
        }
        c.flush();
        let mut got: Vec<u32> = rx.try_iter().collect();
        assert!(c.stats.delayed > 100, "expected ~40% delays");
        // Delivery was shuffled by the holdback queue but complete.
        let reordered = got.windows(2).any(|w| w[0] > w[1]);
        assert!(reordered, "delays should reorder the stream");
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_add_extra_copies() {
        let (tx, rx) = mpsc::channel();
        let rates = FaultRates {
            duplicate_ppm: 300_000,
            ..FaultRates::RELIABLE
        };
        let mut c = ChaosChannel::new(tx, rates, 11);
        for i in 0..500u32 {
            c.send(i);
        }
        let got = rx.try_iter().count() as u64;
        assert_eq!(got, 500 + c.stats.duplicated);
        assert!(c.stats.duplicated > 50, "expected ~30% duplicates");
    }

    #[test]
    fn shared_stats_track_local_stats_and_depth_counts_deliveries() {
        let (tx, rx) = mpsc::channel();
        let shared = SharedChannelStats::new();
        let depth = Arc::new(AtomicI64::new(0));
        let mut c = ChaosChannel::new(tx, FaultRates::uniform(200_000), 9)
            .with_telemetry(shared.clone(), Some(depth.clone()));
        for i in 0..800u32 {
            c.send(i);
        }
        c.flush();
        assert_eq!(shared.snapshot(), c.stats);
        // Every message the receiver can observe was counted exactly
        // once in the depth gauge.
        let received = rx.try_iter().count() as i64;
        assert_eq!(depth.load(Ordering::Relaxed), received);
    }

    #[test]
    fn telemetry_does_not_change_the_fault_pattern() {
        let run = |telemetry: bool| {
            let (tx, _rx) = mpsc::channel();
            let mut c = ChaosChannel::new(tx, FaultRates::uniform(250_000), 77);
            if telemetry {
                c = c.with_telemetry(SharedChannelStats::new(), None);
            }
            for i in 0..500u32 {
                c.send(i);
            }
            c.stats
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_pattern_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let (tx, _rx) = mpsc::channel();
            let mut c = ChaosChannel::new(tx, FaultRates::uniform(250_000), seed);
            for i in 0..300u32 {
                c.send(i);
            }
            c.stats
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
