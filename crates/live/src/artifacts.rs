//! On-disk artifacts of a live run.
//!
//! A run writes, next to a caller-chosen base path:
//!
//! * `<base>.live.kv` — the flat key/value summary (`mcc-stats`
//!   `kv_lines` format) with throughput, latency quantiles,
//!   retry/NACK/chaos counters, restart counts, and the chaos plan the
//!   run was configured with;
//! * `<base>.shard-<i>.mcct` — shard *i*'s journal as a standard trace
//!   file: its linearized reference stream, replayable through any of
//!   the workspace's engines and through `mcc-check`;
//! * `<base>.shard-<i>.events.jsonl` — shard *i*'s committed event
//!   narration, one JSON object per line.
//!
//! `obs_report --live <base>` re-validates the whole set offline:
//! every journal must replay through the lockstep checker with zero
//! violations, every event line must parse, and the counters must
//! reconcile with each other and with the chaos plan.
//!
//! Every artifact is written atomically — rendered to a sibling
//! `.tmp` file and renamed into place — so a crash mid-write (or a
//! reader racing the writer) never observes a half-written artifact,
//! only the previous complete one or none at all.

use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use mcc_check::protocol_slug;
use mcc_core::{RealStorage, Storage};
use mcc_stats::kv_lines;
use mcc_trace::Trace;

use crate::service::{LiveConfig, LiveReport};

/// Path of the summary file for a base path.
pub fn summary_path(base: &Path) -> PathBuf {
    with_suffix(base, ".live.kv")
}

/// Path of shard `i`'s journal trace for a base path.
pub fn journal_path(base: &Path, shard: u32) -> PathBuf {
    with_suffix(base, &format!(".shard-{shard}.mcct"))
}

/// Path of shard `i`'s event stream for a base path.
pub fn events_path(base: &Path, shard: u32) -> PathBuf {
    with_suffix(base, &format!(".shard-{shard}.events.jsonl"))
}

/// Path of the periodic telemetry snapshot stream for a base path.
pub fn telemetry_path(base: &Path) -> PathBuf {
    with_suffix(base, ".telemetry.jsonl")
}

fn with_suffix(base: &Path, suffix: &str) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Writes the full artifact set; returns the paths written.
pub fn write_artifacts(
    report: &LiveReport,
    cfg: &LiveConfig,
    base: &Path,
) -> io::Result<Vec<PathBuf>> {
    write_artifacts_on(report, cfg, base, &RealStorage)
}

/// [`write_artifacts`] through an explicit [`Storage`] backend (the
/// torture harness injects faults here too).
pub fn write_artifacts_on(
    report: &LiveReport,
    cfg: &LiveConfig,
    base: &Path,
    storage: &dyn Storage,
) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();

    let path = summary_path(base);
    publish(storage, &path, summary_kv(report, cfg).into_bytes())?;
    written.push(path);

    for shard in &report.shards {
        let mut trace = Trace::with_capacity(shard.journal.len());
        for entry in &shard.journal {
            trace.push(entry.mref);
        }
        let path = journal_path(base, shard.shard);
        let mut bytes = Vec::new();
        trace.write_to(BufWriter::new(&mut bytes))?;
        publish(storage, &path, bytes)?;
        written.push(path);

        let path = events_path(base, shard.shard);
        let mut bytes = Vec::new();
        for event in &shard.events {
            bytes.write_all(event.to_json().as_bytes())?;
            bytes.write_all(b"\n")?;
        }
        publish(storage, &path, bytes)?;
        written.push(path);
    }
    Ok(written)
}

/// Atomic publish: write a sibling tmp file, fsync it, rename it into
/// place, and fsync the parent directory.
fn publish(storage: &dyn Storage, path: &Path, bytes: Vec<u8>) -> io::Result<()> {
    let tmp = with_suffix(path, ".tmp");
    storage.write_file(&tmp, &bytes)?;
    storage.sync(&tmp)?;
    storage.rename(&tmp, path)?;
    storage.sync_parent(path)
}

/// Renders the summary key/value document.
pub fn summary_kv(report: &LiveReport, cfg: &LiveConfig) -> String {
    let latency = report.latency_us();
    let req = report.request_chaos();
    let rep = report.reply_chaos();
    let nacks_sent: u64 = report.shards.iter().map(|s| s.nacks_sent).sum();
    let journal_writes: u64 = report
        .shards
        .iter()
        .flat_map(|s| s.journal.iter())
        .filter(|e| e.mref.op.is_write())
        .count() as u64;
    let clients_ok = report.client_errors().is_empty();
    let pairs: Vec<(&str, String)> = vec![
        ("protocol", protocol_slug(report.protocol)),
        ("nodes", report.nodes.to_string()),
        ("shards", report.shards.len().to_string()),
        ("wall_ms", report.wall.as_millis().to_string()),
        ("ops_acked", report.ops().to_string()),
        ("ops_per_sec", format!("{:.1}", report.ops_per_sec())),
        ("acked_writes", report.acked_writes().to_string()),
        ("applied", report.applied().to_string()),
        ("journal_writes", journal_writes.to_string()),
        ("retries", report.retries().to_string()),
        ("nacks", report.nacks().to_string()),
        ("nacks_sent", nacks_sent.to_string()),
        ("timeouts", report.timeouts().to_string()),
        (
            "backoff_units",
            report
                .clients
                .iter()
                .map(|c| c.backoff_units)
                .sum::<u64>()
                .to_string(),
        ),
        (
            "p50_us",
            latency.quantile_upper_bound(0.50).unwrap_or(0).to_string(),
        ),
        (
            "p99_us",
            latency.quantile_upper_bound(0.99).unwrap_or(0).to_string(),
        ),
        ("req_sent", req.sent.to_string()),
        ("req_dropped", req.dropped.to_string()),
        ("req_delayed", req.delayed.to_string()),
        ("req_duplicated", req.duplicated.to_string()),
        ("rep_sent", rep.sent.to_string()),
        ("rep_dropped", rep.dropped.to_string()),
        ("rep_delayed", rep.delayed.to_string()),
        ("rep_duplicated", rep.duplicated.to_string()),
        ("restarts", report.restarts().to_string()),
        ("wal_torn_tails", report.wal().torn_tails.to_string()),
        ("wal_dropped_bytes", report.wal().dropped_bytes.to_string()),
        ("wal_reconciled", report.wal().reconciled.to_string()),
        (
            "wal_prev_snapshot_loads",
            report.wal().prev_snapshot_loads.to_string(),
        ),
        ("shards_failed", report.failed_shards().len().to_string()),
        ("clients_ok", u64::from(clients_ok).to_string()),
        ("client_errors", report.client_errors().len().to_string()),
        (
            "verify_violations",
            report.verify.violations.len().to_string(),
        ),
        ("verify_steps", report.verify.steps_replayed.to_string()),
        (
            "live_verified_steps",
            report.live_verified_steps.to_string(),
        ),
        ("chaos_seed", cfg.chaos.seed.to_string()),
        ("drop_ppm", cfg.chaos.request.drop_ppm.to_string()),
        ("nack_ppm", cfg.chaos.request.nack_ppm.to_string()),
        ("delay_ppm", cfg.chaos.request.delay_ppm.to_string()),
        ("duplicate_ppm", cfg.chaos.request.duplicate_ppm.to_string()),
        ("resp_drop_ppm", cfg.chaos.response.drop_ppm.to_string()),
        ("resp_delay_ppm", cfg.chaos.response.delay_ppm.to_string()),
        (
            "resp_duplicate_ppm",
            cfg.chaos.response.duplicate_ppm.to_string(),
        ),
        (
            "soak_ms",
            cfg.soak.map(|d| d.as_millis()).unwrap_or(0).to_string(),
        ),
        ("checkpoint_every", cfg.checkpoint_every.to_string()),
        ("ok", u64::from(report.ok()).to_string()),
    ];
    kv_lines(pairs)
}
