//! Trace-driven simulation of a snooping bus-based multiprocessor.
//!
//! Every coherence-visible action is one bus transaction (the bus
//! serializes them), so the §4.3 evaluation counts transactions instead
//! of messages. Clean blocks are dropped silently — unlike the directory
//! machine there is nobody to notify — and dirty blocks write back with
//! one transaction.
//!
//! Like the directory engine, the bus simulator carries a per-block
//! version checker proving the protocols preserve the memory model.

use std::collections::HashMap;

use mcc_cache::{Cache, CacheConfig};
use mcc_obs::{Event as ObsEvent, Rule as ObsRule, SharedSink, StepKind as ObsStepKind};
use mcc_trace::{BlockAddr, BlockSize, MemOp, MemRef, NodeId, Trace};

use crate::cost::BusStats;
use crate::error::{SnoopError, SnoopViolation, SnoopViolationKind};
use crate::state::{
    local_fill, local_write_hit, snoop_remote, BusRequest, SnoopProtocol, SnoopState,
};

/// Configuration of the bus simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusSimConfig {
    /// Number of processors on the bus.
    pub nodes: u16,
    /// Cache block size.
    pub block_size: BlockSize,
    /// Per-processor cache model.
    pub cache: CacheConfig,
}

impl Default for BusSimConfig {
    /// Sixteen processors, 16-byte blocks, capacity-free caches.
    fn default() -> Self {
        BusSimConfig {
            nodes: 16,
            block_size: BlockSize::B16,
            cache: CacheConfig::Infinite,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: SnoopState,
    version: u64,
}

/// A steppable snooping-bus simulation.
///
/// # Examples
///
/// ```
/// use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol};
/// use mcc_trace::{Addr, MemRef, NodeId, Trace};
///
/// // A lock-protected counter bouncing between two processors.
/// let mut trace = Trace::new();
/// for turn in 0..10u16 {
///     let n = NodeId::new(turn % 2);
///     trace.push(MemRef::read(n, Addr::new(0)));
///     trace.push(MemRef::write(n, Addr::new(0)));
/// }
///
/// let config = BusSimConfig::default();
/// let mesi = BusSim::new(SnoopProtocol::Mesi, &config).run(&trace);
/// let adaptive = BusSim::new(SnoopProtocol::Adaptive, &config).run(&trace);
/// assert!(adaptive.transactions() < mesi.transactions());
/// ```
#[derive(Clone, Debug)]
pub struct BusSim {
    protocol: SnoopProtocol,
    nodes: u16,
    block_size: BlockSize,
    caches: Vec<Cache<Line>>,
    mem_version: HashMap<BlockAddr, u64>,
    latest: HashMap<BlockAddr, u64>,
    stats: BusStats,
    steps: u64,
    /// Observability sink; `None` (the default) keeps emission a single
    /// branch. Events never influence protocol decisions.
    sink: Option<SharedSink>,
}

impl BusSim {
    /// Creates a bus simulation of `protocol` under `config`.
    pub fn new(protocol: SnoopProtocol, config: &BusSimConfig) -> Self {
        BusSim {
            protocol,
            nodes: config.nodes,
            block_size: config.block_size,
            caches: (0..config.nodes).map(|_| config.cache.build()).collect(),
            mem_version: HashMap::new(),
            latest: HashMap::new(),
            stats: BusStats::new(protocol),
            steps: 0,
            sink: None,
        }
    }

    /// Attaches an observability sink: every subsequent step streams
    /// structured [`mcc_obs::Event`]s (bus reference outcomes, snoop
    /// invalidations, migratory fills) into it. The statistics stay
    /// bit-exact with an unobserved run.
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Emits `event` into the attached sink, if any.
    fn emit_obs(&self, event: &ObsEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(event);
        }
    }

    /// Emits the per-reference summary event. Bus machines count whole
    /// transactions rather than split control/data messages, so the
    /// transaction count rides in the `control` slot and `data` is
    /// always zero.
    fn emit_step(&self, block: BlockAddr, node: NodeId, kind: ObsStepKind, transactions: u64) {
        if self.sink.is_some() {
            self.emit_obs(&ObsEvent::Step {
                step: self.steps,
                block: block.index(),
                node: node.index() as u16,
                kind,
                control: transactions,
                data: 0,
            });
        }
    }

    /// Runs the whole trace and returns the transaction statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace references nodes outside the configuration, or
    /// on a coherence violation (a bug in this crate).
    pub fn run(mut self, trace: &Trace) -> BusStats {
        for r in trace.iter() {
            self.step(*r);
        }
        self.finish()
    }

    /// Like [`BusSim::run`], but reports failures — coherence violations
    /// or bad processor indices — as a structured [`SnoopError`] instead
    /// of panicking, sweeping the global invariants periodically and
    /// once more at the end.
    pub fn try_run(mut self, trace: &Trace) -> Result<BusStats, SnoopError> {
        const SWEEP_PERIOD: u64 = 4096;
        for r in trace.iter() {
            self.try_step(*r)?;
            if self.steps.is_multiple_of(SWEEP_PERIOD) {
                self.verify()?;
            }
        }
        self.verify()?;
        Ok(self.finish())
    }

    /// Processes one reference.
    ///
    /// # Panics
    ///
    /// See [`BusSim::run`].
    pub fn step(&mut self, r: MemRef) {
        self.try_step(r).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Processes one reference, reporting failures as a structured
    /// [`SnoopError`] instead of panicking.
    pub fn try_step(&mut self, r: MemRef) -> Result<(), SnoopError> {
        let block = r.addr.block(self.block_size);
        if r.node.index() >= usize::from(self.nodes) {
            return Err(SnoopError::NodeOutOfRange {
                node: r.node,
                nodes: self.nodes,
            });
        }
        self.steps += 1;
        match (self.caches[r.node.index()].contains(block), r.op) {
            (true, MemOp::Read) => {
                self.caches[r.node.index()].touch(block);
                let line = self.caches[r.node.index()]
                    .get(block)
                    .expect("residency checked by the contains() dispatch above");
                self.observe(block, line.version, "read hit")?;
                self.stats.read_hits += 1;
                self.emit_step(block, r.node, ObsStepKind::BusReadHit, 0);
            }
            (true, MemOp::Write) => self.write_hit(r.node, block),
            (false, _) => self.miss(r.node, block, r.op)?,
        }
        Ok(())
    }

    fn write_hit(&mut self, n: NodeId, block: BlockAddr) {
        self.caches[n.index()].touch(block);
        let state = self.caches[n.index()]
            .get(block)
            .expect("residency checked by the contains() dispatch above")
            .state;
        let response = if state.writes_silently() {
            crate::state::SnoopReply::NONE
        } else {
            // Issue Bir on the bus; every other cache snoops it.
            self.stats.invalidations += 1;
            self.broadcast(n, block, BusRequest::Invalidate)
        };
        let (request, new_state) = local_write_hit(state, response);
        debug_assert_eq!(request.is_some(), !state.writes_silently());
        let v = self.bump_version(block);
        let line = self.caches[n.index()]
            .get_mut(block)
            .expect("residency checked by the contains() dispatch above");
        line.state = new_state;
        line.version = v;
        if state.writes_silently() {
            self.stats.silent_write_hits += 1;
            self.emit_step(block, n, ObsStepKind::BusWriteHitSilent, 0);
        } else {
            self.emit_step(block, n, ObsStepKind::BusWriteHitInvalidate, 1);
        }
    }

    fn miss(&mut self, n: NodeId, block: BlockAddr, op: MemOp) -> Result<(), SnoopViolation> {
        let write = op.is_write();
        let request = if write {
            self.stats.write_misses += 1;
            BusRequest::WriteMiss
        } else {
            self.stats.read_misses += 1;
            BusRequest::ReadMiss
        };
        let response = self.broadcast(n, block, request);
        // Data comes from memory, which snooped any dirty provider's
        // transfer during the broadcast, so it is always current here.
        let served = self.mem(block);
        self.observe(block, served, "miss fill")?;
        let state = local_fill(self.protocol, write, response);
        if state == SnoopState::MigratoryClean || state == SnoopState::MigratoryDirty {
            self.stats.migratory_fills += 1;
            // The bus analogue of a promotion: the snooped Migratory
            // assertion made this fill arrive with write permission.
            self.emit_obs(&ObsEvent::Promote {
                step: self.steps,
                block: block.index(),
                node: n.index() as u16,
                rule: ObsRule::BusMigratoryFill,
            });
        }
        let version = if write {
            debug_assert!(state.is_dirty());
            self.bump_version(block)
        } else {
            served
        };
        self.insert_line(n, block, state, version);
        self.emit_step(
            block,
            n,
            if write {
                ObsStepKind::BusWriteMiss
            } else {
                ObsStepKind::BusReadMiss
            },
            1,
        );
        Ok(())
    }

    /// Puts `request` on the bus: every other cache snoops and reacts;
    /// responses are wired-OR merged. Dirty providers update memory.
    fn broadcast(
        &mut self,
        requester: NodeId,
        block: BlockAddr,
        request: BusRequest,
    ) -> crate::state::SnoopReply {
        let mut merged = crate::state::SnoopReply::NONE;
        for node in NodeId::first(self.nodes) {
            if node == requester {
                continue;
            }
            let Some(line) = self.caches[node.index()].get(block) else {
                continue;
            };
            let (next, reply) = snoop_remote(self.protocol, line.state, request);
            if reply.provide_data {
                // Memory snoops the data transfer.
                let version = line.version;
                self.mem_version.insert(block, version);
            }
            match next {
                Some(new_state) => {
                    self.caches[node.index()]
                        .get_mut(block)
                        .expect("snooped line fetched from this cache a moment ago")
                        .state = new_state;
                }
                None => {
                    self.caches[node.index()].remove(block);
                    self.stats.snoop_invalidated += 1;
                    self.emit_obs(&ObsEvent::Invalidation {
                        step: self.steps,
                        block: block.index(),
                        node: node.index() as u16,
                    });
                }
            }
            merged = merged.merge(reply);
        }
        merged
    }

    fn insert_line(&mut self, n: NodeId, block: BlockAddr, state: SnoopState, version: u64) {
        let victim = self.caches[n.index()].insert(block, Line { state, version });
        if let Some((vb, vline)) = victim {
            if vline.state.is_dirty() {
                // Write the victim back to memory: one bus transaction.
                self.mem_version.insert(vb, vline.version);
                self.stats.writebacks += 1;
            }
            // Clean victims are dropped silently on a bus machine.
        }
    }

    fn mem(&self, block: BlockAddr) -> u64 {
        self.mem_version.get(&block).copied().unwrap_or(0)
    }

    fn latest(&self, block: BlockAddr) -> u64 {
        self.latest.get(&block).copied().unwrap_or(0)
    }

    fn bump_version(&mut self, block: BlockAddr) -> u64 {
        let v = self.latest.entry(block).or_insert(0);
        *v += 1;
        *v
    }

    /// Checks an observed version against the latest write.
    fn observe(
        &self,
        block: BlockAddr,
        observed: u64,
        context: &'static str,
    ) -> Result<(), SnoopViolation> {
        let latest = self.latest(block);
        if observed == latest {
            Ok(())
        } else {
            Err(SnoopViolation {
                block,
                step: self.steps,
                kind: SnoopViolationKind::StaleRead { observed, latest },
                context,
            })
        }
    }

    /// References processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> SnoopProtocol {
        self.protocol
    }

    /// The cache-entry state of `block` at `node`, if resident.
    pub fn line_state(&self, node: NodeId, block: BlockAddr) -> Option<SnoopState> {
        self.caches[node.index()].get(block).map(|l| l.state)
    }

    /// Sweeps the global invariants across the caches, reporting the
    /// first broken one: an exclusive-state copy coexisting with any
    /// other copy of the same block, two `S2` copies, more than two
    /// copies alongside an `S2` copy, or stale memory for a block with
    /// no dirty copy.
    pub fn verify(&self) -> Result<(), SnoopViolation> {
        let mut per_block: HashMap<BlockAddr, Vec<SnoopState>> = HashMap::new();
        for node in NodeId::first(self.nodes) {
            for (block, line) in self.caches[node.index()].iter() {
                per_block.entry(block).or_default().push(line.state);
            }
        }
        let sweep = "invariant sweep";
        let violation = |block: BlockAddr, kind: SnoopViolationKind| SnoopViolation {
            block,
            step: self.steps,
            kind,
            context: sweep,
        };
        for (&block, states) in &per_block {
            let exclusive = states
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        SnoopState::Exclusive
                            | SnoopState::Dirty
                            | SnoopState::MigratoryClean
                            | SnoopState::MigratoryDirty
                    )
                })
                .count();
            if !(exclusive == 0 || states.len() == 1) {
                return Err(violation(
                    block,
                    SnoopViolationKind::ExclusiveConflict {
                        states: states.clone(),
                    },
                ));
            }
            let s2 = states.iter().filter(|s| **s == SnoopState::Shared2).count();
            if s2 > 1 {
                return Err(violation(block, SnoopViolationKind::MultipleS2));
            }
            if s2 == 1 && states.len() > 2 {
                return Err(violation(
                    block,
                    SnoopViolationKind::S2Overcrowded {
                        copies: states.len(),
                    },
                ));
            }
            if !states.iter().any(|s| s.is_dirty()) && self.mem(block) != self.latest(block) {
                return Err(violation(
                    block,
                    SnoopViolationKind::StaleMemory {
                        memory: self.mem(block),
                        latest: self.latest(block),
                    },
                ));
            }
        }
        Ok(())
    }

    /// Verifies global invariants across the caches.
    ///
    /// Thin wrapper over [`verify`](Self::verify) for assertion-style
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics when an exclusive-state copy coexists with any other copy
    /// of the same block, when two `S2` copies coexist, when more than
    /// two copies exist alongside an `S2` copy, or when memory is stale
    /// for a block with no dirty copy.
    pub fn check_invariants(&self) {
        if let Err(v) = self.verify() {
            panic!("{v}");
        }
    }

    /// Consumes the simulation and returns the statistics.
    pub fn finish(self) -> BusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BusCostModel;
    use mcc_cache::CacheGeometry;
    use mcc_trace::Addr;

    fn ping_pong(rounds: usize) -> Trace {
        let mut t = Trace::new();
        t.push(MemRef::write(NodeId::new(1), Addr::new(0)));
        for i in 0..rounds {
            let n = NodeId::new(if i % 2 == 0 { 2 } else { 1 });
            t.push(MemRef::read(n, Addr::new(0)));
            t.push(MemRef::write(n, Addr::new(0)));
        }
        t
    }

    fn run(protocol: SnoopProtocol, trace: &Trace) -> BusStats {
        let mut sim = BusSim::new(protocol, &BusSimConfig::default());
        for r in trace.iter() {
            sim.step(*r);
        }
        sim.check_invariants();
        sim.finish()
    }

    #[test]
    fn mesi_migratory_handoff_costs_two_transactions() {
        let rounds = 10;
        let stats = run(SnoopProtocol::Mesi, &ping_pong(rounds));
        // Cold write miss + per round (read miss + invalidation).
        assert_eq!(stats.write_misses, 1);
        assert_eq!(stats.read_misses, rounds as u64);
        assert_eq!(stats.invalidations, rounds as u64);
        assert_eq!(stats.transactions(), 1 + 2 * rounds as u64);
    }

    #[test]
    fn adaptive_migratory_handoff_costs_one_transaction() {
        let rounds = 10;
        let stats = run(SnoopProtocol::Adaptive, &ping_pong(rounds));
        // First hand-off replicates and invalidates (detection); each
        // later hand-off is a single migratory read miss.
        assert_eq!(stats.read_misses, rounds as u64);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.transactions(), 1 + rounds as u64 + 1);
        assert_eq!(stats.migratory_fills, rounds as u64 - 1);
    }

    #[test]
    fn adaptive_detects_via_s2_invalidate() {
        let cfg = BusSimConfig::default();
        let mut sim = BusSim::new(SnoopProtocol::Adaptive, &cfg);
        let block = Addr::new(0).block(cfg.block_size);
        sim.step(MemRef::write(NodeId::new(1), Addr::new(0)));
        assert_eq!(
            sim.line_state(NodeId::new(1), block),
            Some(SnoopState::Dirty)
        );
        sim.step(MemRef::read(NodeId::new(2), Addr::new(0)));
        // The older copy demotes to S2, the newer loads as S.
        assert_eq!(
            sim.line_state(NodeId::new(1), block),
            Some(SnoopState::Shared2)
        );
        assert_eq!(
            sim.line_state(NodeId::new(2), block),
            Some(SnoopState::Shared)
        );
        sim.step(MemRef::write(NodeId::new(2), Addr::new(0)));
        // The S2 snooper asserted Migratory: the writer lands in MD.
        assert_eq!(sim.line_state(NodeId::new(1), block), None);
        assert_eq!(
            sim.line_state(NodeId::new(2), block),
            Some(SnoopState::MigratoryDirty)
        );
        // Next reader migrates the block in one transaction.
        sim.step(MemRef::read(NodeId::new(3), Addr::new(0)));
        assert_eq!(sim.line_state(NodeId::new(2), block), None);
        assert_eq!(
            sim.line_state(NodeId::new(3), block),
            Some(SnoopState::MigratoryClean)
        );
    }

    #[test]
    fn older_copy_writing_is_not_migratory_evidence() {
        let cfg = BusSimConfig::default();
        let mut sim = BusSim::new(SnoopProtocol::Adaptive, &cfg);
        let block = Addr::new(0).block(cfg.block_size);
        sim.step(MemRef::write(NodeId::new(1), Addr::new(0)));
        sim.step(MemRef::read(NodeId::new(2), Addr::new(0)));
        // Node 1 (the S2 holder, previous invalidator) writes again: the
        // newer S copy asserts nothing, so node 1 lands in D, not MD.
        sim.step(MemRef::write(NodeId::new(1), Addr::new(0)));
        assert_eq!(
            sim.line_state(NodeId::new(1), block),
            Some(SnoopState::Dirty)
        );
    }

    #[test]
    fn read_shared_data_replicates_under_adaptive() {
        let mut t = Trace::new();
        t.push(MemRef::write(NodeId::new(0), Addr::new(0)));
        for n in 1..8u16 {
            t.push(MemRef::read(NodeId::new(n), Addr::new(0)));
        }
        let mesi = run(SnoopProtocol::Mesi, &t);
        let adaptive = run(SnoopProtocol::Adaptive, &t);
        assert_eq!(adaptive.transactions(), mesi.transactions());
        assert_eq!(adaptive.migratory_fills, 0);
    }

    #[test]
    fn snooping_cannot_remember_across_eviction() {
        // Unlike the directory protocol (§4.3): once a migratory block is
        // evicted, its classification is gone and must be re-learned.
        let geom = CacheGeometry::new(32, BlockSize::B16, 2).unwrap();
        let cfg = BusSimConfig {
            cache: CacheConfig::Finite(geom),
            ..BusSimConfig::default()
        };
        let mut sim = BusSim::new(SnoopProtocol::Adaptive, &cfg);
        let block = Addr::new(0).block(cfg.block_size);
        // Classify block 0 migratory.
        sim.step(MemRef::write(NodeId::new(1), Addr::new(0)));
        sim.step(MemRef::read(NodeId::new(2), Addr::new(0)));
        sim.step(MemRef::write(NodeId::new(2), Addr::new(0)));
        assert_eq!(
            sim.line_state(NodeId::new(2), block),
            Some(SnoopState::MigratoryDirty)
        );
        // Evict it from node 2 (writeback), then re-load at node 3.
        sim.step(MemRef::read(NodeId::new(2), Addr::new(32)));
        sim.step(MemRef::read(NodeId::new(2), Addr::new(64)));
        sim.step(MemRef::read(NodeId::new(2), Addr::new(96)));
        assert_eq!(sim.line_state(NodeId::new(2), block), None);
        sim.step(MemRef::read(NodeId::new(3), Addr::new(0)));
        // Loaded Exclusive, not MigratoryClean: classification lost.
        assert_eq!(
            sim.line_state(NodeId::new(3), block),
            Some(SnoopState::Exclusive)
        );
    }

    #[test]
    fn migrate_first_variant_never_creates_exclusive() {
        let t = ping_pong(6);
        let cfg = BusSimConfig::default();
        let mut sim = BusSim::new(SnoopProtocol::AdaptiveMigrateFirst, &cfg);
        for r in t.iter() {
            sim.step(*r);
            for n in NodeId::first(cfg.nodes) {
                assert_ne!(
                    sim.line_state(n, Addr::new(0).block(cfg.block_size)),
                    Some(SnoopState::Exclusive),
                    "E must be a dead state under migrate-first"
                );
            }
        }
        sim.check_invariants();
    }

    #[test]
    fn writebacks_counted_for_dirty_victims() {
        let geom = CacheGeometry::new(32, BlockSize::B16, 2).unwrap();
        let cfg = BusSimConfig {
            cache: CacheConfig::Finite(geom),
            ..BusSimConfig::default()
        };
        let mut sim = BusSim::new(SnoopProtocol::Mesi, &cfg);
        sim.step(MemRef::write(NodeId::new(0), Addr::new(0)));
        sim.step(MemRef::read(NodeId::new(0), Addr::new(32)));
        sim.step(MemRef::read(NodeId::new(0), Addr::new(64)));
        let stats = sim.finish();
        assert_eq!(stats.writebacks, 1);
    }

    #[test]
    fn cost_models_order_sensibly() {
        let stats = run(SnoopProtocol::Adaptive, &ping_pong(10));
        assert!(stats.cost(BusCostModel::ReplyWeighted) >= stats.cost(BusCostModel::Unit));
    }

    #[test]
    #[should_panic(expected = "16 processors")]
    fn rejects_out_of_range_node() {
        let mut sim = BusSim::new(SnoopProtocol::Mesi, &BusSimConfig::default());
        sim.step(MemRef::read(NodeId::new(16), Addr::new(0)));
    }

    #[test]
    fn try_step_reports_out_of_range_node_as_error() {
        let mut sim = BusSim::new(SnoopProtocol::Mesi, &BusSimConfig::default());
        let err = sim
            .try_step(MemRef::read(NodeId::new(16), Addr::new(0)))
            .expect_err("node 16 on a 16-processor bus");
        assert_eq!(
            err,
            crate::error::SnoopError::NodeOutOfRange {
                node: NodeId::new(16),
                nodes: 16
            }
        );
        // The bad reference was not counted.
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn try_run_matches_run_on_clean_traces() {
        let t = ping_pong(12);
        let panicking = BusSim::new(SnoopProtocol::Adaptive, &BusSimConfig::default()).run(&t);
        let checked = BusSim::new(SnoopProtocol::Adaptive, &BusSimConfig::default())
            .try_run(&t)
            .expect("coherent protocol");
        assert_eq!(panicking, checked);
    }
}
