//! Snooping bus-based cache coherence: the MESI baseline and the paper's
//! adaptive migratory extension (§2.1, Figures 1–2).
//!
//! The adaptive protocol splits MESI's Shared state into `S` and `S2`
//! (shared with at most two copies, held by the *older* copy) and adds
//! two migratory states, `MC` and `MD`, plus a `Migratory` response line
//! on the bus:
//!
//! * a read-miss request served by a `D`/`E` copy demotes it to `S2`;
//! * a subsequent invalidation request (`Bir`) reaching an `S2` copy
//!   proves the writer holds the *more recently created* copy — the
//!   migratory signature — so the `S2` holder invalidates itself and
//!   asserts `Migratory`, landing the writer in `MD`;
//! * a read miss served by an `MD` copy *migrates* the block: the old
//!   copy invalidates in the same transaction and the requester loads
//!   `MC`, with write permission, for free.
//!
//! The result: a migratory hand-off costs one bus transaction instead of
//! MESI's two.
//!
//! # Examples
//!
//! ```
//! use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol};
//! use mcc_trace::{Addr, MemRef, NodeId, Trace};
//!
//! let mut trace = Trace::new();
//! for turn in 0..20u16 {
//!     let node = NodeId::new(turn % 4);
//!     trace.push(MemRef::read(node, Addr::new(0)));
//!     trace.push(MemRef::write(node, Addr::new(0)));
//! }
//!
//! let config = BusSimConfig::default();
//! let mesi = BusSim::new(SnoopProtocol::Mesi, &config).run(&trace);
//! let adaptive = BusSim::new(SnoopProtocol::Adaptive, &config).run(&trace);
//! assert!(adaptive.transactions() < mesi.transactions());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bussim;
mod cost;
mod error;
mod state;
mod update;

pub use bussim::{BusSim, BusSimConfig};
pub use cost::{BusCostModel, BusStats};
pub use error::{SnoopError, SnoopViolation, SnoopViolationKind};
pub use state::{
    local_fill, local_write_hit, snoop_remote, BusRequest, SnoopProtocol, SnoopReply, SnoopState,
};
pub use update::{UpdateBusSim, UpdateBusStats, UpdateState};
