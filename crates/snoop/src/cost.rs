//! Bus transaction statistics and the two §4.3 cost models.

use core::fmt;

use crate::state::SnoopProtocol;

/// The §4.3 bus cost models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusCostModel {
    /// Model 1: every memory or coherence operation is one bus
    /// transaction of unit cost.
    Unit,
    /// Model 2: operations that require replies (misses, and
    /// invalidations under the *adaptive* protocol, which must collect
    /// the Migratory response) cost two units; operations that do not
    /// (writebacks, and invalidations under the conventional protocol)
    /// cost one.
    ReplyWeighted,
}

impl fmt::Display for BusCostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusCostModel::Unit => "unit-cost",
            BusCostModel::ReplyWeighted => "reply-weighted",
        })
    }
}

/// Transaction counts from one bus simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusStats {
    /// The protocol that produced these counts (affects invalidation
    /// pricing under [`BusCostModel::ReplyWeighted`]).
    pub protocol: SnoopProtocol,
    /// Reads that hit a valid copy (no transaction).
    pub read_hits: u64,
    /// Writes that hit a copy with write permission (no transaction).
    pub silent_write_hits: u64,
    /// Read-miss bus transactions.
    pub read_misses: u64,
    /// Write-miss bus transactions.
    pub write_misses: u64,
    /// Invalidation (`Bir`) bus transactions.
    pub invalidations: u64,
    /// Writeback transactions for dirty victims.
    pub writebacks: u64,
    /// Misses filled in a migratory state (the Migratory line was
    /// asserted, or migrate-first applied).
    pub migratory_fills: u64,
    /// Copies invalidated in other caches by snooped transactions.
    pub snoop_invalidated: u64,
}

impl BusStats {
    /// Fresh, zeroed statistics for `protocol`.
    pub fn new(protocol: SnoopProtocol) -> Self {
        BusStats {
            protocol,
            read_hits: 0,
            silent_write_hits: 0,
            read_misses: 0,
            write_misses: 0,
            invalidations: 0,
            writebacks: 0,
            migratory_fills: 0,
            snoop_invalidated: 0,
        }
    }

    /// Total bus transactions.
    pub fn transactions(&self) -> u64 {
        self.read_misses + self.write_misses + self.invalidations + self.writebacks
    }

    /// Total cost under the given model.
    pub fn cost(&self, model: BusCostModel) -> u64 {
        match model {
            BusCostModel::Unit => self.transactions(),
            BusCostModel::ReplyWeighted => {
                let invalidation_cost = if self.protocol.is_adaptive() { 2 } else { 1 };
                2 * (self.read_misses + self.write_misses)
                    + invalidation_cost * self.invalidations
                    + self.writebacks
            }
        }
    }
}

impl fmt::Display for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} transactions ({} read misses, {} write misses, {} invalidations, {} writebacks)",
            self.protocol,
            self.transactions(),
            self.read_misses,
            self.write_misses,
            self.invalidations,
            self.writebacks
        )?;
        write!(
            f,
            "{} read hits, {} silent write hits, {} migratory fills",
            self.read_hits, self.silent_write_hits, self.migratory_fills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(protocol: SnoopProtocol) -> BusStats {
        BusStats {
            read_misses: 10,
            write_misses: 4,
            invalidations: 6,
            writebacks: 2,
            ..BusStats::new(protocol)
        }
    }

    #[test]
    fn transactions_total() {
        assert_eq!(sample(SnoopProtocol::Mesi).transactions(), 22);
    }

    #[test]
    fn unit_cost_equals_transactions() {
        let s = sample(SnoopProtocol::Adaptive);
        assert_eq!(s.cost(BusCostModel::Unit), s.transactions());
    }

    #[test]
    fn reply_weighted_prices_invalidations_by_protocol() {
        // Conventional invalidations need no reply: 1 unit each.
        let mesi = sample(SnoopProtocol::Mesi);
        assert_eq!(mesi.cost(BusCostModel::ReplyWeighted), 2 * 14 + 6 + 2);
        // Adaptive invalidations must collect the Migratory response: 2.
        let adaptive = sample(SnoopProtocol::Adaptive);
        assert_eq!(adaptive.cost(BusCostModel::ReplyWeighted), 2 * 14 + 12 + 2);
    }

    #[test]
    fn display_mentions_counts() {
        let s = sample(SnoopProtocol::Adaptive).to_string();
        assert!(s.contains("22 transactions"));
        assert!(s.contains("6 invalidations"));
    }
}
