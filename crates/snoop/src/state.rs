//! The snooping protocol state machines of Figures 1 and 2.
//!
//! The adaptive protocol extends MESI with three states: `S2`
//! (Shared-two: at most two cached copies exist, and this is the *older*
//! one), `MC` (Migratory-Clean) and `MD` (Migratory-Dirty), plus a
//! `Migratory` response line on the bus alongside the usual `Shared`
//! line.
//!
//! The functions here are pure transcriptions of the Figure 2 tables so
//! they can be tested row by row and printed by the `figure2` harness
//! binary.

use core::fmt;

/// Which snooping protocol governs the caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SnoopProtocol {
    /// The base MESI (Illinois) write-invalidate protocol.
    Mesi,
    /// The paper's adaptive extension with replicate-on-read-miss as the
    /// initial policy (Figures 1–2).
    Adaptive,
    /// The §2.1 variation: migrate-on-read-miss is the initial policy,
    /// making `E` a dead state (a lone clean copy loads as `MC`).
    AdaptiveMigrateFirst,
}

impl SnoopProtocol {
    /// Whether this protocol uses the Migratory bus line.
    pub const fn is_adaptive(self) -> bool {
        !matches!(self, SnoopProtocol::Mesi)
    }
}

impl fmt::Display for SnoopProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnoopProtocol::Mesi => "MESI",
            SnoopProtocol::Adaptive => "adaptive",
            SnoopProtocol::AdaptiveMigrateFirst => "adaptive-migrate-first",
        })
    }
}

/// A valid cache-entry state (`I` is represented by absence from the
/// cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SnoopState {
    /// `E`: the only cached copy; memory is current.
    Exclusive,
    /// `D`: the only cached copy; modified (usually called `M`; the paper
    /// renames it to keep `M` for "Migratory").
    Dirty,
    /// `S2`: one of at most two cached copies, and the older one.
    Shared2,
    /// `S`: one of possibly many cached copies.
    Shared,
    /// `MC`: migratory, only copy, unmodified at this cache.
    MigratoryClean,
    /// `MD`: migratory, only copy, modified.
    MigratoryDirty,
}

impl SnoopState {
    /// Every state, in Figure 2's order.
    pub const ALL: [SnoopState; 6] = [
        SnoopState::Exclusive,
        SnoopState::Dirty,
        SnoopState::Shared2,
        SnoopState::Shared,
        SnoopState::MigratoryClean,
        SnoopState::MigratoryDirty,
    ];

    /// Whether this copy is modified relative to memory.
    pub const fn is_dirty(self) -> bool {
        matches!(self, SnoopState::Dirty | SnoopState::MigratoryDirty)
    }

    /// Whether a write hit completes with no bus transaction.
    pub const fn writes_silently(self) -> bool {
        matches!(
            self,
            SnoopState::Exclusive
                | SnoopState::Dirty
                | SnoopState::MigratoryClean
                | SnoopState::MigratoryDirty
        )
    }
}

impl fmt::Display for SnoopState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnoopState::Exclusive => "E",
            SnoopState::Dirty => "D",
            SnoopState::Shared2 => "S2",
            SnoopState::Shared => "S",
            SnoopState::MigratoryClean => "MC",
            SnoopState::MigratoryDirty => "MD",
        })
    }
}

/// A bus transaction observed by snooping caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusRequest {
    /// `Brmr`: another cache read-missed.
    ReadMiss,
    /// `Bwmr`: another cache write-missed.
    WriteMiss,
    /// `Bir`: another cache is writing its Shared copy.
    Invalidate,
}

impl fmt::Display for BusRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusRequest::ReadMiss => "Brmr",
            BusRequest::WriteMiss => "Bwmr",
            BusRequest::Invalidate => "Bir",
        })
    }
}

/// The response lines a snooping cache asserts during a transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SnoopReply {
    /// The `Shared` line.
    pub shared: bool,
    /// The paper's new `Migratory` line.
    pub migratory: bool,
    /// This cache supplies the data (it held the block dirty).
    pub provide_data: bool,
}

impl SnoopReply {
    /// No lines asserted, no data provided.
    pub const NONE: SnoopReply = SnoopReply {
        shared: false,
        migratory: false,
        provide_data: false,
    };

    /// Combines the responses of several caches (wired-OR bus lines).
    pub fn merge(self, other: SnoopReply) -> SnoopReply {
        SnoopReply {
            shared: self.shared || other.shared,
            migratory: self.migratory || other.migratory,
            provide_data: self.provide_data || other.provide_data,
        }
    }
}

/// Figure 2, "Transitions on Bus Requests": how a cache holding `state`
/// reacts to a bus request from another cache. Returns the new state
/// (`None` = invalidate the entry) and the asserted response lines.
///
/// Under [`SnoopProtocol::Mesi`], `S2` behaves exactly like `S`, the
/// migratory states are unreachable, and the Migratory line is never
/// asserted.
///
/// Interpretation note: the `MC` row realizes the paper's rule that "the
/// switch from migrate-on-read-miss to replicate-on-read-miss occurs when
/// a cache with a Migratory-Clean entry receives any miss request" — a
/// read-miss request demotes `MC` to `S2` and replicates (mirroring the
/// directory protocol's demotion to `TWO COPIES`), and a write-miss
/// request invalidates without asserting Migratory.
///
/// # Panics
///
/// Panics if a migratory state receives a request under MESI (they are
/// unreachable there), or on `Bir` to an exclusive-state copy (a `Bir`
/// sender holds a copy, so the block cannot be in `E`/`D`/`MC`/`MD`
/// elsewhere).
pub fn snoop_remote(
    protocol: SnoopProtocol,
    state: SnoopState,
    request: BusRequest,
) -> (Option<SnoopState>, SnoopReply) {
    use BusRequest::*;
    use SnoopState::*;
    let adaptive = protocol.is_adaptive();
    let reply = |shared, migratory, provide_data| SnoopReply {
        shared,
        migratory: migratory && adaptive,
        provide_data,
    };
    if !adaptive {
        assert!(
            !matches!(state, MigratoryClean | MigratoryDirty),
            "migratory states are unreachable under MESI"
        );
    }
    match (state, request) {
        (Exclusive, ReadMiss) => (Some(Shared2), reply(true, false, false)),
        (Exclusive, WriteMiss) => (None, reply(false, true, false)),
        (Dirty, ReadMiss) => (Some(Shared2), reply(true, false, true)),
        (Dirty, WriteMiss) => (None, reply(false, true, true)),
        (Shared2, ReadMiss) => (Some(Shared), reply(true, false, false)),
        (Shared2, WriteMiss) => (None, SnoopReply::NONE),
        // The Bir sender holds the newer of the two copies: migratory
        // evidence.
        (Shared2, Invalidate) => (None, reply(false, true, false)),
        (Shared, ReadMiss) => (Some(Shared), reply(true, false, false)),
        (Shared, WriteMiss) => (None, SnoopReply::NONE),
        (Shared, Invalidate) => (None, SnoopReply::NONE),
        // Any miss request demotes a Migratory-Clean copy.
        (MigratoryClean, ReadMiss) => (Some(Shared2), reply(true, false, false)),
        (MigratoryClean, WriteMiss) => (None, SnoopReply::NONE),
        // A Migratory-Dirty copy migrates in one transaction.
        (MigratoryDirty, ReadMiss) => (None, reply(false, true, true)),
        (MigratoryDirty, WriteMiss) => (None, reply(false, true, true)),
        (Exclusive | Dirty | MigratoryClean | MigratoryDirty, Invalidate) => {
            panic!("Bir received while holding {state}: the sender holds no copy")
        }
    }
}

/// Figure 2, "Transitions on Local Cache Events", `I` rows: the state a
/// block is loaded in after a miss, given the merged bus response.
pub fn local_fill(protocol: SnoopProtocol, write: bool, response: SnoopReply) -> SnoopState {
    use SnoopState::*;
    if write {
        // I + Cwm.
        if response.migratory {
            MigratoryDirty
        } else {
            Dirty
        }
    } else if response.migratory {
        // I + Crm with Migratory asserted.
        MigratoryClean
    } else if response.shared {
        Shared
    } else if protocol == SnoopProtocol::AdaptiveMigrateFirst {
        // Initial policy is migrate-on-read-miss: a lone copy loads with
        // write permission and E becomes a dead state (§2.1).
        MigratoryClean
    } else {
        Exclusive
    }
}

/// Figure 2, "Transitions on Local Cache Events", write-hit rows: the
/// bus request a write hit must issue (if any) and the state the entry
/// assumes once the transaction's merged response is known.
///
/// For silent states the response is ignored.
pub fn local_write_hit(
    state: SnoopState,
    response: SnoopReply,
) -> (Option<BusRequest>, SnoopState) {
    use SnoopState::*;
    match state {
        Exclusive => (None, Dirty),
        Dirty => (None, Dirty),
        MigratoryClean => (None, MigratoryDirty),
        MigratoryDirty => (None, MigratoryDirty),
        // S2 is the older copy: the other cache's (S) snoop asserts
        // nothing, so the writer lands in D.
        Shared2 => (Some(BusRequest::Invalidate), Dirty),
        Shared => (
            Some(BusRequest::Invalidate),
            if response.migratory {
                MigratoryDirty
            } else {
                Dirty
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BusRequest::*;
    use SnoopState::*;

    /// Figure 2's "Transitions on Bus Requests" table, row by row, for
    /// the adaptive protocol.
    #[test]
    fn figure_2_bus_request_rows() {
        // (state, request, new state, assert S, assert M, provide)
        type Row = (SnoopState, BusRequest, Option<SnoopState>, bool, bool, bool);
        let rows: &[Row] = &[
            (Exclusive, ReadMiss, Some(Shared2), true, false, false),
            (Exclusive, WriteMiss, None, false, true, false),
            (Dirty, ReadMiss, Some(Shared2), true, false, true),
            (Dirty, WriteMiss, None, false, true, true),
            (Shared2, ReadMiss, Some(Shared), true, false, false),
            (Shared2, WriteMiss, None, false, false, false),
            (Shared2, Invalidate, None, false, true, false),
            (Shared, ReadMiss, Some(Shared), true, false, false),
            (Shared, WriteMiss, None, false, false, false),
            (Shared, Invalidate, None, false, false, false),
            (MigratoryClean, ReadMiss, Some(Shared2), true, false, false),
            (MigratoryClean, WriteMiss, None, false, false, false),
            (MigratoryDirty, ReadMiss, None, false, true, true),
            (MigratoryDirty, WriteMiss, None, false, true, true),
        ];
        for &(state, request, next, s, m, provide) in rows {
            let (got_next, got_reply) = snoop_remote(SnoopProtocol::Adaptive, state, request);
            assert_eq!(got_next, next, "{state} + {request}: state");
            assert_eq!(got_reply.shared, s, "{state} + {request}: Shared line");
            assert_eq!(
                got_reply.migratory, m,
                "{state} + {request}: Migratory line"
            );
            assert_eq!(got_reply.provide_data, provide, "{state} + {request}: data");
        }
    }

    /// Figure 2's "Transitions on Local Cache Events" `I` and write-hit
    /// rows.
    #[test]
    fn figure_2_local_event_rows() {
        let none = SnoopReply::NONE;
        let s = SnoopReply {
            shared: true,
            ..none
        };
        let m = SnoopReply {
            migratory: true,
            ..none
        };
        let p = SnoopProtocol::Adaptive;
        // I + Crm.
        assert_eq!(local_fill(p, false, none), Exclusive);
        assert_eq!(local_fill(p, false, m), MigratoryClean);
        assert_eq!(local_fill(p, false, s), Shared);
        // I + Cwm.
        assert_eq!(local_fill(p, true, none), Dirty);
        assert_eq!(local_fill(p, true, m), MigratoryDirty);
        // Write hits.
        assert_eq!(local_write_hit(Exclusive, none), (None, Dirty));
        assert_eq!(local_write_hit(Shared2, none), (Some(Invalidate), Dirty));
        assert_eq!(local_write_hit(Shared, none), (Some(Invalidate), Dirty));
        assert_eq!(
            local_write_hit(Shared, m),
            (Some(Invalidate), MigratoryDirty)
        );
        assert_eq!(
            local_write_hit(MigratoryClean, none),
            (None, MigratoryDirty)
        );
    }

    #[test]
    fn mesi_never_asserts_migratory() {
        for state in [Exclusive, Dirty, Shared2, Shared] {
            for request in [ReadMiss, WriteMiss] {
                let (_, reply) = snoop_remote(SnoopProtocol::Mesi, state, request);
                assert!(!reply.migratory, "{state} + {request}");
            }
        }
        let (_, reply) = snoop_remote(SnoopProtocol::Mesi, Shared, Invalidate);
        assert!(!reply.migratory);
    }

    #[test]
    fn mesi_fills_like_classic_mesi() {
        let none = SnoopReply::NONE;
        let s = SnoopReply {
            shared: true,
            ..none
        };
        assert_eq!(local_fill(SnoopProtocol::Mesi, false, none), Exclusive);
        assert_eq!(local_fill(SnoopProtocol::Mesi, false, s), Shared);
        assert_eq!(local_fill(SnoopProtocol::Mesi, true, none), Dirty);
    }

    #[test]
    fn migrate_first_variant_loads_clean_blocks_migratory() {
        let none = SnoopReply::NONE;
        assert_eq!(
            local_fill(SnoopProtocol::AdaptiveMigrateFirst, false, none),
            MigratoryClean
        );
        // With Shared asserted, replication still wins.
        let s = SnoopReply {
            shared: true,
            ..none
        };
        assert_eq!(
            local_fill(SnoopProtocol::AdaptiveMigrateFirst, false, s),
            Shared
        );
    }

    #[test]
    fn dirty_states_provide_data() {
        for state in SnoopState::ALL {
            let (_, reply) = snoop_remote(SnoopProtocol::Adaptive, state, ReadMiss);
            assert_eq!(reply.provide_data, state.is_dirty(), "{state}");
        }
    }

    #[test]
    #[should_panic(expected = "unreachable under MESI")]
    fn mesi_rejects_migratory_states() {
        let _ = snoop_remote(SnoopProtocol::Mesi, MigratoryClean, ReadMiss);
    }

    #[test]
    #[should_panic(expected = "the sender holds no copy")]
    fn bir_to_exclusive_copy_is_a_protocol_error() {
        let _ = snoop_remote(SnoopProtocol::Adaptive, Dirty, Invalidate);
    }

    #[test]
    fn reply_merge_is_wired_or() {
        let s = SnoopReply {
            shared: true,
            ..SnoopReply::NONE
        };
        let m = SnoopReply {
            migratory: true,
            ..SnoopReply::NONE
        };
        let merged = s.merge(m).merge(SnoopReply::NONE);
        assert!(merged.shared && merged.migratory && !merged.provide_data);
    }

    #[test]
    fn display_names() {
        assert_eq!(SnoopState::MigratoryDirty.to_string(), "MD");
        assert_eq!(BusRequest::Invalidate.to_string(), "Bir");
        assert_eq!(SnoopProtocol::Mesi.to_string(), "MESI");
    }
}
