//! A write-update snooping protocol (Firefly-style), as a baseline.
//!
//! The paper's introduction argues that write-update protocols are the
//! wrong starting point for migratory data: they broadcast on *every*
//! write to shared data, while write-invalidate pays only on the first
//! write. This module provides the baseline that makes the argument
//! measurable: compare [`UpdateBusSim`] against
//! [`BusSim`](crate::BusSim) on a migratory workload and the update
//! traffic dwarfs the invalidate traffic.
//!
//! States are Exclusive / Dirty / Shared; writes to Shared copies
//! broadcast an update transaction that patches every other copy (and
//! memory) in place, and drop back to exclusive when the snoop reveals
//! no other copies remain.

use std::collections::HashMap;

use core::fmt;

use mcc_cache::Cache;
use mcc_trace::{BlockAddr, BlockSize, MemOp, MemRef, NodeId, Trace};

use crate::bussim::BusSimConfig;

/// Cache-entry states of the write-update protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateState {
    /// The only cached copy; memory current.
    Exclusive,
    /// The only cached copy; modified (writes are local).
    Dirty,
    /// One of possibly many copies; kept current by update broadcasts;
    /// memory is written through on every update.
    Shared,
}

impl fmt::Display for UpdateState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdateState::Exclusive => "E",
            UpdateState::Dirty => "D",
            UpdateState::Shared => "S",
        })
    }
}

/// Transaction counts from one write-update simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateBusStats {
    /// Reads that hit a valid copy.
    pub read_hits: u64,
    /// Writes that completed locally (Exclusive or Dirty copies).
    pub silent_write_hits: u64,
    /// Read-miss bus transactions.
    pub read_misses: u64,
    /// Write-miss bus transactions (fill + update broadcast).
    pub write_misses: u64,
    /// Update broadcast transactions (writes to Shared copies).
    pub updates: u64,
    /// Writeback transactions for dirty victims.
    pub writebacks: u64,
}

impl UpdateBusStats {
    /// Total bus transactions.
    pub fn transactions(&self) -> u64 {
        self.read_misses + self.write_misses + self.updates + self.writebacks
    }
}

impl fmt::Display for UpdateBusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write-update: {} transactions ({} read misses, {} write misses, {} updates, {} writebacks)",
            self.transactions(),
            self.read_misses,
            self.write_misses,
            self.updates,
            self.writebacks
        )
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: UpdateState,
    version: u64,
}

/// A trace-driven write-update bus simulation.
///
/// # Examples
///
/// ```
/// use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol, UpdateBusSim};
/// use mcc_trace::{Addr, MemRef, NodeId, Trace};
///
/// // Migratory hand-offs with a few writes per visit: write-update
/// // broadcasts every one of them.
/// let mut trace = Trace::new();
/// for turn in 0..10u16 {
///     let n = NodeId::new(turn % 2);
///     trace.push(MemRef::read(n, Addr::new(0)));
///     for _ in 0..4 {
///         trace.push(MemRef::write(n, Addr::new(0)));
///     }
/// }
/// let config = BusSimConfig::default();
/// let invalidate = BusSim::new(SnoopProtocol::Mesi, &config).run(&trace);
/// let update = UpdateBusSim::new(&config).run(&trace);
/// assert!(update.transactions() > invalidate.transactions());
/// ```
#[derive(Clone, Debug)]
pub struct UpdateBusSim {
    nodes: u16,
    block_size: BlockSize,
    caches: Vec<Cache<Line>>,
    mem_version: HashMap<BlockAddr, u64>,
    latest: HashMap<BlockAddr, u64>,
    stats: UpdateBusStats,
}

impl UpdateBusSim {
    /// Creates a write-update simulation under `config`.
    pub fn new(config: &BusSimConfig) -> Self {
        UpdateBusSim {
            nodes: config.nodes,
            block_size: config.block_size,
            caches: (0..config.nodes).map(|_| config.cache.build()).collect(),
            mem_version: HashMap::new(),
            latest: HashMap::new(),
            stats: UpdateBusStats::default(),
        }
    }

    /// Runs the whole trace and returns the transaction statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace references nodes outside the configuration, or
    /// on a coherence violation (a bug in this crate).
    pub fn run(mut self, trace: &Trace) -> UpdateBusStats {
        for r in trace.iter() {
            self.step(*r);
        }
        self.finish()
    }

    /// Processes one reference.
    ///
    /// # Panics
    ///
    /// See [`UpdateBusSim::run`].
    pub fn step(&mut self, r: MemRef) {
        let block = r.addr.block(self.block_size);
        assert!(
            r.node.index() < usize::from(self.nodes),
            "reference by {} but the bus has {} processors",
            r.node,
            self.nodes
        );
        let n = r.node;
        let resident = self.caches[n.index()].contains(block);
        match (resident, r.op) {
            (true, MemOp::Read) => {
                self.caches[n.index()].touch(block);
                let v = self.caches[n.index()]
                    .get(block)
                    .expect("residency checked by the contains() dispatch above")
                    .version;
                self.check_version(block, v, "read hit");
                self.stats.read_hits += 1;
            }
            (true, MemOp::Write) => {
                self.caches[n.index()].touch(block);
                let state = self.caches[n.index()]
                    .get(block)
                    .expect("residency checked by the contains() dispatch above")
                    .state;
                let v = self.bump_version(block);
                match state {
                    UpdateState::Exclusive | UpdateState::Dirty => {
                        self.stats.silent_write_hits += 1;
                        let line = self.caches[n.index()]
                            .get_mut(block)
                            .expect("residency checked by the contains() dispatch above");
                        line.state = UpdateState::Dirty;
                        line.version = v;
                    }
                    UpdateState::Shared => {
                        // Broadcast the update: every copy and memory are
                        // patched in place. One bus transaction per write.
                        self.stats.updates += 1;
                        let others = self.update_peers(n, block, v);
                        self.mem_version.insert(block, v);
                        let line = self.caches[n.index()]
                            .get_mut(block)
                            .expect("residency checked by the contains() dispatch above");
                        line.version = v;
                        // Firefly-style: no other copy answered the snoop,
                        // so future writes can complete locally.
                        if others == 0 {
                            line.state = UpdateState::Dirty;
                        }
                    }
                }
            }
            (false, op) => {
                let write = op.is_write();
                if write {
                    self.stats.write_misses += 1;
                } else {
                    self.stats.read_misses += 1;
                }
                // Snoop: a dirty holder supplies data and demotes to
                // Shared (memory snoops the transfer).
                let mut sharers = 0u64;
                for node in NodeId::first(self.nodes) {
                    if node == n {
                        continue;
                    }
                    if let Some(line) = self.caches[node.index()].get_mut(block) {
                        sharers += 1;
                        if line.state == UpdateState::Dirty {
                            let v = line.version;
                            self.mem_version.insert(block, v);
                        }
                        line.state = UpdateState::Shared;
                    }
                }
                let served = self.mem(block);
                self.check_version(block, served, "miss fill");
                let (state, version) = if write {
                    // Fill + update in one transaction: peers are patched.
                    let v = self.bump_version(block);
                    self.update_peers(n, block, v);
                    self.mem_version.insert(block, v);
                    let state = if sharers > 0 {
                        UpdateState::Shared
                    } else {
                        UpdateState::Dirty
                    };
                    (state, v)
                } else if sharers > 0 {
                    (UpdateState::Shared, served)
                } else {
                    (UpdateState::Exclusive, served)
                };
                self.insert_line(n, block, state, version);
            }
        }
    }

    /// Patches every other cached copy of `block` to `version`; returns
    /// how many copies were patched.
    fn update_peers(&mut self, n: NodeId, block: BlockAddr, version: u64) -> u64 {
        let mut patched = 0;
        for node in NodeId::first(self.nodes) {
            if node == n {
                continue;
            }
            if let Some(line) = self.caches[node.index()].get_mut(block) {
                line.version = version;
                line.state = UpdateState::Shared;
                patched += 1;
            }
        }
        patched
    }

    fn insert_line(&mut self, n: NodeId, block: BlockAddr, state: UpdateState, version: u64) {
        let victim = self.caches[n.index()].insert(block, Line { state, version });
        if let Some((vb, vline)) = victim {
            if vline.state == UpdateState::Dirty {
                self.mem_version.insert(vb, vline.version);
                self.stats.writebacks += 1;
            }
        }
    }

    fn mem(&self, block: BlockAddr) -> u64 {
        self.mem_version.get(&block).copied().unwrap_or(0)
    }

    fn latest(&self, block: BlockAddr) -> u64 {
        self.latest.get(&block).copied().unwrap_or(0)
    }

    fn bump_version(&mut self, block: BlockAddr) -> u64 {
        let v = self.latest.entry(block).or_insert(0);
        *v += 1;
        *v
    }

    #[track_caller]
    fn check_version(&self, block: BlockAddr, observed: u64, context: &str) {
        let latest = self.latest(block);
        assert_eq!(
            observed, latest,
            "coherence violation during {context}: {block} observed version {observed} \
             but the latest write produced {latest}"
        );
    }

    /// The cache-entry state of `block` at `node`, if resident.
    pub fn line_state(&self, node: NodeId, block: BlockAddr) -> Option<UpdateState> {
        self.caches[node.index()].get(block).map(|l| l.state)
    }

    /// Consumes the simulation and returns the statistics.
    pub fn finish(self) -> UpdateBusStats {
        self.stats
    }
}

/// Convenience: builds an [`UpdateBusSim`] from the same configuration
/// type the invalidate-based simulations use.
impl From<&BusSimConfig> for UpdateBusSim {
    fn from(config: &BusSimConfig) -> Self {
        UpdateBusSim::new(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_cache::CacheConfig;
    use mcc_trace::Addr;

    fn sim() -> UpdateBusSim {
        UpdateBusSim::new(&BusSimConfig::default())
    }

    #[test]
    fn every_shared_write_broadcasts() {
        let mut s = sim();
        let block = Addr::new(0).block(BlockSize::B16);
        s.step(MemRef::read(NodeId::new(0), Addr::new(0)));
        s.step(MemRef::read(NodeId::new(1), Addr::new(0)));
        assert_eq!(
            s.line_state(NodeId::new(0), block),
            Some(UpdateState::Shared)
        );
        for i in 0..5 {
            s.step(MemRef::write(NodeId::new(0), Addr::new(0)));
            // The reader's copy stays valid and current.
            s.step(MemRef::read(NodeId::new(1), Addr::new(0)));
            assert_eq!(s.stats.updates, i + 1);
        }
        let stats = s.finish();
        assert_eq!(stats.updates, 5);
        assert_eq!(stats.read_hits, 5);
    }

    #[test]
    fn exclusive_writes_are_silent() {
        let mut s = sim();
        s.step(MemRef::read(NodeId::new(0), Addr::new(0)));
        s.step(MemRef::write(NodeId::new(0), Addr::new(0)));
        s.step(MemRef::write(NodeId::new(0), Addr::new(0)));
        let stats = s.finish();
        assert_eq!(stats.updates, 0);
        assert_eq!(stats.silent_write_hits, 2);
    }

    #[test]
    fn update_drops_to_dirty_when_no_sharers_remain() {
        // With a finite cache the sharer's copy can be evicted; the next
        // update notices nobody answered and stops broadcasting.
        let geom = mcc_cache::CacheGeometry::new(32, BlockSize::B16, 2).unwrap();
        let cfg = BusSimConfig {
            cache: CacheConfig::Finite(geom),
            ..BusSimConfig::default()
        };
        let mut s = UpdateBusSim::new(&cfg);
        let block = Addr::new(0).block(BlockSize::B16);
        s.step(MemRef::read(NodeId::new(0), Addr::new(0)));
        s.step(MemRef::read(NodeId::new(1), Addr::new(0)));
        // Evict node 1's copy via conflicts.
        s.step(MemRef::read(NodeId::new(1), Addr::new(32)));
        s.step(MemRef::read(NodeId::new(1), Addr::new(64)));
        s.step(MemRef::read(NodeId::new(1), Addr::new(96)));
        s.step(MemRef::write(NodeId::new(0), Addr::new(0)));
        assert_eq!(
            s.line_state(NodeId::new(0), block),
            Some(UpdateState::Dirty)
        );
        s.step(MemRef::write(NodeId::new(0), Addr::new(0)));
        let stats = s.finish();
        assert_eq!(stats.updates, 1, "second write is local");
    }

    #[test]
    fn write_update_loses_badly_on_migratory_handoffs() {
        // §1: "The write-update strategy entails interprocessor
        // communication on every write operation to shared data."
        let mut trace = Trace::new();
        for turn in 0..20u16 {
            let n = NodeId::new(turn % 2);
            trace.push(MemRef::read(n, Addr::new(0)));
            for _ in 0..4 {
                trace.push(MemRef::write(n, Addr::new(0)));
            }
        }
        let cfg = BusSimConfig::default();
        let update = UpdateBusSim::new(&cfg).run(&trace);
        let invalidate = crate::BusSim::new(crate::SnoopProtocol::Adaptive, &cfg).run(&trace);
        assert!(update.transactions() > 3 * invalidate.transactions());
    }

    #[test]
    fn write_update_wins_on_producer_consumer() {
        // The flip side: one producer, many re-reading consumers — the
        // update keeps consumer copies alive instead of invalidating.
        let mut trace = Trace::new();
        for _ in 0..10 {
            trace.push(MemRef::write(NodeId::new(0), Addr::new(0)));
            for n in 1..6u16 {
                trace.push(MemRef::read(NodeId::new(n), Addr::new(0)));
            }
        }
        let cfg = BusSimConfig::default();
        let update = UpdateBusSim::new(&cfg).run(&trace);
        let invalidate = crate::BusSim::new(crate::SnoopProtocol::Mesi, &cfg).run(&trace);
        assert!(update.transactions() < invalidate.transactions());
    }

    #[test]
    fn display_reports_updates() {
        let mut s = sim();
        s.step(MemRef::read(NodeId::new(0), Addr::new(0)));
        let text = s.finish().to_string();
        assert!(text.contains("1 read misses"));
    }
}
