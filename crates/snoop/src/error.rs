//! Structured errors for the bus simulator, mirroring
//! `mcc_core::SimError` for the snooping machine.

use core::fmt;

use mcc_trace::{BlockAddr, NodeId};

use crate::state::SnoopState;

/// What kind of snooping-bus invariant was broken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnoopViolationKind {
    /// A read observed a version older than the latest write.
    StaleRead {
        /// Version the read observed.
        observed: u64,
        /// Version the latest write produced.
        latest: u64,
    },
    /// An exclusive-state copy coexists with other copies.
    ExclusiveConflict {
        /// Every cached state of the block at detection time.
        states: Vec<SnoopState>,
    },
    /// Two `S2` copies coexist (the older-copy marker must be unique).
    MultipleS2,
    /// An `S2` copy promises at most two copies, but more exist.
    S2Overcrowded {
        /// Copies cached at detection time.
        copies: usize,
    },
    /// No dirty copy exists, yet main memory holds a stale version.
    StaleMemory {
        /// Version held by memory.
        memory: u64,
        /// Version the latest write produced.
        latest: u64,
    },
}

/// A coherence violation on the snooping bus, with its diagnosis.
///
/// The `Display` form is the exact message the legacy panicking API
/// emits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnoopViolation {
    /// The block whose invariant broke.
    pub block: BlockAddr,
    /// References processed before the violation was detected.
    pub step: u64,
    /// What broke.
    pub kind: SnoopViolationKind,
    /// Protocol context ("read hit", "miss fill", "invariant sweep").
    pub context: &'static str,
}

impl fmt::Display for SnoopViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SnoopViolationKind::StaleRead { observed, latest } => write!(
                f,
                "coherence violation during {}: {} observed version {observed} \
                 but the latest write produced {latest}",
                self.context, self.block
            )?,
            SnoopViolationKind::ExclusiveConflict { states } => write!(
                f,
                "{}: exclusive copy coexists with others: {states:?}",
                self.block
            )?,
            SnoopViolationKind::MultipleS2 => write!(f, "{}: multiple S2 copies", self.block)?,
            SnoopViolationKind::S2Overcrowded { copies } => write!(
                f,
                "{}: S2 promises at most two copies but {copies} exist",
                self.block
            )?,
            SnoopViolationKind::StaleMemory { memory, latest } => write!(
                f,
                "{}: memory stale with no dirty copy (memory {memory}, latest {latest})",
                self.block
            )?,
        }
        write!(f, " [step {}]", self.step)
    }
}

impl std::error::Error for SnoopViolation {}

/// Any structured failure a bus simulation can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnoopError {
    /// The protocol broke a coherence invariant.
    Violation(SnoopViolation),
    /// A reference named a processor outside the configured bus.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of processors on the bus.
        nodes: u16,
    },
}

impl fmt::Display for SnoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopError::Violation(v) => v.fmt(f),
            SnoopError::NodeOutOfRange { node, nodes } => {
                write!(f, "reference by {node} but the bus has {nodes} processors")
            }
        }
    }
}

impl std::error::Error for SnoopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnoopError::Violation(v) => Some(v),
            SnoopError::NodeOutOfRange { .. } => None,
        }
    }
}

impl From<SnoopViolation> for SnoopError {
    fn from(v: SnoopViolation) -> Self {
        SnoopError::Violation(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_keep_legacy_phrases() {
        let v = SnoopViolation {
            block: BlockAddr::new(1),
            step: 9,
            kind: SnoopViolationKind::StaleRead {
                observed: 1,
                latest: 3,
            },
            context: "read hit",
        };
        let s = v.to_string();
        assert!(s.contains("coherence violation during read hit"), "{s}");
        assert!(s.contains("step 9"), "{s}");

        let e = SnoopError::NodeOutOfRange {
            node: NodeId::new(16),
            nodes: 16,
        };
        assert!(e.to_string().contains("16 processors"));

        let conflict = SnoopViolation {
            block: BlockAddr::new(1),
            step: 0,
            kind: SnoopViolationKind::ExclusiveConflict {
                states: vec![SnoopState::Exclusive, SnoopState::Shared],
            },
            context: "invariant sweep",
        };
        assert!(conflict
            .to_string()
            .contains("exclusive copy coexists with others"));
    }

    #[test]
    fn violation_converts_into_error_with_source() {
        let v = SnoopViolation {
            block: BlockAddr::new(2),
            step: 1,
            kind: SnoopViolationKind::MultipleS2,
            context: "invariant sweep",
        };
        let e: SnoopError = v.clone().into();
        assert_eq!(e, SnoopError::Violation(v));
        assert!(std::error::Error::source(&e).is_some());
    }
}
