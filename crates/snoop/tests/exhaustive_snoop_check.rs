//! Exhaustive model checking of the snooping protocols: every access
//! sequence up to a bounded depth over a small machine, for MESI, the
//! adaptive protocol, its migrate-first variant, and the write-update
//! baseline — with the coherence checker armed and the S2/exclusivity
//! invariants verified after every step.

use mcc_cache::{CacheConfig, CacheGeometry};
use mcc_snoop::{BusSim, BusSimConfig, SnoopProtocol, UpdateBusSim};
use mcc_trace::{Addr, BlockSize, MemOp, MemRef, NodeId};

const NODES: u16 = 3;
const BLOCKS: u64 = 2;

fn alphabet() -> Vec<MemRef> {
    let mut refs = Vec::new();
    for node in 0..NODES {
        for block in 0..BLOCKS {
            for op in [MemOp::Read, MemOp::Write] {
                refs.push(MemRef::new(NodeId::new(node), op, Addr::new(block * 16)));
            }
        }
    }
    refs
}

fn explore_invalidate(protocol: SnoopProtocol, cache: CacheConfig, depth: usize) -> u64 {
    let config = BusSimConfig {
        nodes: NODES,
        block_size: BlockSize::B16,
        cache,
    };
    let alphabet = alphabet();
    let mut visited = 0;
    let mut stack = vec![(BusSim::new(protocol, &config), 0usize)];
    while let Some((sim, level)) = stack.pop() {
        if level == depth {
            continue;
        }
        for &r in &alphabet {
            let mut next = sim.clone();
            next.step(r); // panics on any coherence violation
            next.check_invariants();
            visited += 1;
            stack.push((next, level + 1));
        }
    }
    visited
}

#[test]
fn exhaustive_depth_five_all_invalidate_protocols() {
    let expected: u64 = (1..=5u32).map(|k| (alphabet().len() as u64).pow(k)).sum();
    for protocol in [
        SnoopProtocol::Mesi,
        SnoopProtocol::Adaptive,
        SnoopProtocol::AdaptiveMigrateFirst,
    ] {
        let visited = explore_invalidate(protocol, CacheConfig::Infinite, 5);
        assert_eq!(visited, expected, "{protocol}: exploration incomplete");
    }
}

#[test]
fn exhaustive_depth_five_tiny_cache() {
    let tiny = CacheGeometry::new(16, BlockSize::B16, 1).unwrap();
    for protocol in [SnoopProtocol::Mesi, SnoopProtocol::Adaptive] {
        explore_invalidate(protocol, CacheConfig::Finite(tiny), 5);
    }
}

#[test]
fn exhaustive_depth_five_write_update() {
    let config = BusSimConfig {
        nodes: NODES,
        block_size: BlockSize::B16,
        cache: CacheConfig::Infinite,
    };
    let alphabet = alphabet();
    let mut stack = vec![(UpdateBusSim::new(&config), 0usize)];
    while let Some((sim, level)) = stack.pop() {
        if level == 5 {
            continue;
        }
        for &r in &alphabet {
            let mut next = sim.clone();
            next.step(r); // the internal version checker panics on stale reads
            stack.push((next, level + 1));
        }
    }
}
